//! The `scenario_bench` sweep: the repo's tracked workload-scenario
//! trajectory artifact (`BENCH_scenarios.json`).
//!
//! Runs the four placement strategies ([`Strategy::all`]) under four
//! canonical traffic scenarios — `stationary`, `diurnal`, `flash_crowd`
//! and `drift_storm` ([`ScenarioSpec`] presets, time constants scaled to
//! each layer's virtual span) — through *both* simulators: the
//! discrete-event trainer with an online [`ReshardController`] attached,
//! and the inference server on the same plan. Every point records the DES
//! event-log fingerprint, re-shard count and sojourn tails alongside the
//! serve report's latency tails, hit rate and fingerprint — all pure
//! functions of the seed. Wall-clock fields follow the `des_bench`
//! convention: written only under `RECSHARD_BENCH_TIMING=1`, otherwise the
//! [`TIMING_DISABLED`] sentinel keeps the artifact byte-stable.
//!
//! The sweep asserts the scenario engine's acceptance criteria in-line:
//! the flash crowd strictly inflates every placement's DES p99 over the
//! stationary run's, the drift storm triggers at least one controller
//! re-shard somewhere in the sweep, and stationary traffic triggers none.
//!
//! [`fingerprint_drift`] gates CI on both fingerprints per point;
//! [`throughput_regressions`] adds the same generous wall-clock floor as
//! `des_bench` when timing is on.

use crate::solver_bench::{bench_system, field_num, fnv_fold, TIMING_DISABLED};
use crate::Strategy;
use recshard_data::{
    FeatureClass, FeatureId, FeatureSpec, ModelSpec, PoolingSpec, RmKind, ScenarioSpec,
};
use recshard_des::{
    ArrivalProcess, ClusterConfig, ClusterSimulator, ReshardController, ReshardPolicy, RunSummary,
};
use recshard_obs::{Collector, ObsBundle};
use recshard_serve::{ArrivalModel, InferenceServer, PolicyKind, ServeConfig};
use recshard_sharding::{ShardingPlan, SystemSpec};
use recshard_stats::{DatasetProfile, DatasetProfiler};
use std::time::Instant;

/// Sweep configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioBenchConfig {
    /// Tables in the scenario workload.
    pub tables: usize,
    /// GPUs simulated (one count; scenarios × placements already fan out).
    pub gpus: usize,
    /// Training iterations simulated per DES point.
    pub iterations: u64,
    /// Traced samples per batch (DES) and per query (serve).
    pub batch_size: usize,
    /// Synthetic samples profiled before sharding.
    pub profile_samples: usize,
    /// Open-loop DES arrival interval, ms. Chosen close to the iteration
    /// service time so the flash crowd actually queues.
    pub arrival_interval_ms: f64,
    /// Measured serve queries per point.
    pub serve_queries: u32,
    /// Serve warmup queries (excluded from measurement).
    pub serve_warmup: u32,
    /// Serve arrival interval, µs.
    pub serve_interval_us: f64,
    /// Master seed.
    pub seed: u64,
    /// Measure wall-clock times into the JSON (breaks byte-stability
    /// across runs; stdout always shows measured rates).
    pub include_timing: bool,
}

impl ScenarioBenchConfig {
    /// The full tracked sweep: 4 scenarios × 4 placements. Same workload
    /// shape as [`tiny`](Self::tiny) — 4 tables per GPU keeps the
    /// user/content mix lumpy enough per GPU that a drift storm visibly
    /// skews the gather load — but a 5x longer trajectory.
    pub fn full() -> Self {
        Self {
            tables: 16,
            gpus: 4,
            iterations: 2_000,
            batch_size: 32,
            profile_samples: 800,
            arrival_interval_ms: 0.01,
            serve_queries: 2_000,
            serve_warmup: 500,
            serve_interval_us: 50.0,
            seed: 0xA5F0,
            include_timing: false,
        }
    }

    /// A seconds-scale sweep for tests and CI smoke runs.
    pub fn tiny() -> Self {
        Self {
            tables: 16,
            gpus: 4,
            iterations: 400,
            batch_size: 32,
            profile_samples: 800,
            arrival_interval_ms: 0.01,
            serve_queries: 400,
            serve_warmup: 100,
            serve_interval_us: 50.0,
            seed: 0xA5F0,
            include_timing: false,
        }
    }

    /// [`full`](Self::full) with environment overrides:
    /// `RECSHARD_SCENARIO_ITERS` overrides the DES iteration count,
    /// `RECSHARD_SEED` reseeds, and `RECSHARD_BENCH_TIMING=1` measures
    /// wall times into the JSON.
    pub fn from_env() -> Self {
        let mut cfg = Self::full();
        let get = |name: &str| std::env::var(name).ok().and_then(|v| v.parse::<u64>().ok());
        if let Some(iters) = get("RECSHARD_SCENARIO_ITERS") {
            cfg.iterations = iters.max(1);
        }
        if let Some(seed) = get("RECSHARD_SEED") {
            cfg.seed = seed;
        }
        cfg.include_timing = std::env::var("RECSHARD_BENCH_TIMING").as_deref() == Ok("1");
        cfg
    }

    /// The DES run's virtual span in seconds (open-loop arrivals pace the
    /// timeline; scenario time constants are fractions of this).
    fn des_span_s(&self) -> f64 {
        self.iterations as f64 * self.arrival_interval_ms / 1e3
    }

    /// The serve run's virtual span in seconds.
    fn serve_span_s(&self) -> f64 {
        (self.serve_warmup + self.serve_queries) as f64 * self.serve_interval_us / 1e6
    }

    fn cluster_config(&self) -> ClusterConfig {
        ClusterConfig {
            batch_size: self.batch_size,
            iterations: self.iterations,
            seed: self.seed,
            arrival: ArrivalProcess::FixedRate {
                interval_ms: self.arrival_interval_ms,
            },
            // Zero per-table launch overhead keeps per-GPU busy time
            // proportional to gather work, so a drift storm that moves
            // pooling factors between feature classes is visible to the
            // controller's imbalance signal.
            kernel_overhead_us_per_table: 0.0,
            scale_to_batch: None,
            ..ClusterConfig::default()
        }
    }

    fn serve_config(&self) -> ServeConfig {
        ServeConfig {
            queries: self.serve_queries,
            warmup: self.serve_warmup,
            batch_size: self.batch_size.min(8),
            seed: self.seed,
            arrival: ArrivalModel::FixedRate {
                interval_us: self.serve_interval_us,
            },
            policy: PolicyKind::StatGuided,
            ..ServeConfig::default()
        }
    }

    fn reshard_policy(&self) -> ReshardPolicy {
        ReshardPolicy {
            check_every_iterations: (self.iterations / 10).max(1),
            // With launch overhead zeroed the busy signal is all gather
            // work, which the greedy placements only balance to within
            // ~1.5x on this workload; the threshold sits above that
            // standing imbalance so only a genuine distribution shift (the
            // drift storm roughly doubles it) trips a re-shard.
            imbalance_threshold: 1.8,
            ..ReshardPolicy::default()
        }
    }
}

/// The scenario workload: an even user/content class split whose pooling
/// factors *both* respond to [`ShiftKind::DriftStorm`](recshard_data::ShiftKind)
/// rescaling (no one-hot tables — those are immune to mean scaling), so
/// drift storms skew the per-GPU gather load whichever way a placement
/// grouped the classes.
pub fn scenario_model(tables: usize) -> ModelSpec {
    let features = (0..tables)
        .map(|i| {
            let hash_size = 1u64 << (10 + (i % 6));
            FeatureSpec {
                id: FeatureId(i as u32),
                name: format!("scenario_{i}"),
                class: if i % 2 == 0 {
                    FeatureClass::User
                } else {
                    FeatureClass::Content
                },
                cardinality: hash_size * 4,
                hash_size,
                zipf_exponent: 1.05 + 0.5 * (i as f64 / tables.max(1) as f64),
                pooling: if i % 2 == 0 {
                    PoolingSpec::Constant(4)
                } else {
                    PoolingSpec::LongTail { mean: 8.0, max: 32 }
                },
                coverage: match i % 3 {
                    0 => 1.0,
                    1 => 0.7,
                    _ => 0.4,
                },
                embedding_dim: 64,
                bytes_per_element: 4,
                hash_seed: 0xD1CE ^ i as u64,
            }
        })
        .collect();
    ModelSpec::new("scenario-mix", RmKind::Custom, features, 256)
}

/// The scenario names in sweep order.
pub const SCENARIOS: [&str; 4] = ["stationary", "diurnal", "flash_crowd", "drift_storm"];

/// Builds the named scenario with time constants scaled to a `span_s`-second
/// virtual run, so the same shape exercises both simulators' timelines.
///
/// # Panics
///
/// Panics on an unknown name.
pub fn scenario_spec(name: &str, span_s: f64) -> ScenarioSpec {
    match name {
        "stationary" => ScenarioSpec::stationary(),
        // Two full periods, ±50% around the base rate.
        "diurnal" => ScenarioSpec::diurnal(span_s / 2.0, 0.5),
        // A 16x spike over 10% of the span, starting at 20% — deep enough
        // past saturation that every placement queues; the implied hot-key
        // shift rides the spike's leading edge.
        "flash_crowd" => ScenarioSpec::flash_crowd(0.2 * span_s, 0.1 * span_s, 16.0),
        // Three waves of user/content pooling drift from 10% of the span,
        // then a table-growth event.
        "drift_storm" => ScenarioSpec::drift_storm(0.1 * span_s, 0.15 * span_s, 3),
        other => panic!("unknown scenario {other}"),
    }
}

/// One sweep point: one scenario × one placement, run through both layers.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioBenchPoint {
    /// Scenario name (see [`SCENARIOS`]).
    pub scenario: String,
    /// Placement strategy label.
    pub placement: String,
    /// GPUs simulated.
    pub gpus: usize,
    /// DES iterations simulated.
    pub iterations: u64,
    /// Total DES events processed.
    pub events: u64,
    /// Plan swaps performed by the online re-sharding controller.
    pub reshards: u32,
    /// DES virtual-time makespan, ms.
    pub makespan_ms: f64,
    /// Median DES iteration sojourn time, ms.
    pub p50_ms: f64,
    /// 99th-percentile DES iteration sojourn time, ms.
    pub p99_ms: f64,
    /// Order-sensitive FNV-1a hash of the DES run's event log.
    pub fingerprint: u64,
    /// Measured serve queries.
    pub serve_queries: u32,
    /// Median serve latency, ms.
    pub serve_p50_ms: f64,
    /// 99th-percentile serve latency, ms.
    pub serve_p99_ms: f64,
    /// Serve cache hit rate over measured queries.
    pub serve_hit_rate: f64,
    /// The serve report's event fingerprint.
    pub serve_fingerprint: u64,
    /// Best-of-[`TIMING_REPS`] DES wall-clock time (ms), or
    /// [`TIMING_DISABLED`].
    pub wall_ms: f64,
    /// DES events per wall-clock second (best repetition), or
    /// [`TIMING_DISABLED`].
    pub events_per_sec: f64,
}

/// The full sweep result.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioBenchReport {
    /// Seed the sweep ran under.
    pub seed: u64,
    /// Whether timing fields hold measurements.
    pub timed: bool,
    /// Per-point results (scenario outer, placements in
    /// [`Strategy::all`] order).
    pub points: Vec<ScenarioBenchPoint>,
}

/// Wall-clock repetitions per timed DES run; every repetition must replay
/// bit-identically (asserted), only the minimum wall time is recorded.
const TIMING_REPS: usize = 3;

/// A controller re-solving with the same strategy that placed the initial
/// plan, so a re-shard is a genuine "this placement, re-planned for the
/// drifted workload" decision.
fn controller_for(cfg: &ScenarioBenchConfig, strategy: Strategy) -> ReshardController {
    let solver =
        move |model: &ModelSpec,
              profile: &DatasetProfile,
              system: &SystemSpec,
              _prev: Option<&ShardingPlan>| { Some(strategy.plan(model, profile, system)) };
    ReshardController::new(cfg.reshard_policy(), Box::new(solver))
}

fn simulate(
    cfg: &ScenarioBenchConfig,
    model: &ModelSpec,
    profile: &DatasetProfile,
    system: &SystemSpec,
    plan: &ShardingPlan,
    strategy: Strategy,
    spec: &ScenarioSpec,
) -> (RunSummary, f64) {
    let reps = if cfg.include_timing { TIMING_REPS } else { 1 };
    let mut best: Option<(RunSummary, f64)> = None;
    for _ in 0..reps {
        let start = Instant::now();
        let summary = ClusterSimulator::new(model, plan, profile, system, cfg.cluster_config())
            .with_scenario(spec.clone())
            .with_controller(controller_for(cfg, strategy))
            .run();
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        best = Some(match best {
            None => (summary, wall_ms),
            Some((prev, prev_ms)) => {
                assert_eq!(
                    prev, summary,
                    "seeded repetitions must replay bit-identically"
                );
                (prev, prev_ms.min(wall_ms))
            }
        });
    }
    best.expect("at least one repetition")
}

/// Runs the sweep.
///
/// # Panics
///
/// Panics if an acceptance criterion fails: the flash crowd must strictly
/// inflate every placement's DES p99 over its stationary run, the drift
/// storm must trigger at least one controller re-shard across the sweep,
/// and stationary traffic must trigger none.
pub fn run_sweep(cfg: &ScenarioBenchConfig) -> ScenarioBenchReport {
    let model = scenario_model(cfg.tables);
    let profile = DatasetProfiler::profile_model(&model, cfg.profile_samples, cfg.seed);
    let system = bench_system(model.total_bytes(), cfg.gpus);
    let serve_cfg = cfg.serve_config();
    let mut points = Vec::new();
    for scenario in SCENARIOS {
        let des_spec = scenario_spec(scenario, cfg.des_span_s());
        let serve_spec = scenario_spec(scenario, cfg.serve_span_s());
        for strategy in Strategy::all() {
            let plan = strategy.plan(&model, &profile, &system);
            let (summary, wall_ms) =
                simulate(cfg, &model, &profile, &system, &plan, strategy, &des_spec);
            let serve = InferenceServer::run_scenario(
                &model,
                &plan,
                &profile,
                &system,
                serve_cfg,
                &serve_spec,
            );
            let events_per_sec = summary.events as f64 / (wall_ms / 1e3).max(1e-12);
            println!(
                "scenario_bench: {scenario}/{}: {} events, {} reshard(s), DES p50/p99 \
                 {:.3}/{:.3} ms (fp {:#018x}), serve p50/p99 {:.3}/{:.3} ms hit {:.3} \
                 (fp {:#018x}), {wall_ms:.1} ms wall",
                strategy.label(),
                summary.events,
                summary.reshards,
                summary.p50_ms,
                summary.p99_ms,
                summary.fingerprint,
                serve.p50_ms,
                serve.p99_ms,
                serve.hit_rate,
                serve.fingerprint,
            );
            let gate = |v: f64| {
                if cfg.include_timing {
                    v
                } else {
                    TIMING_DISABLED
                }
            };
            points.push(ScenarioBenchPoint {
                scenario: scenario.to_string(),
                placement: strategy.label().to_string(),
                gpus: cfg.gpus,
                iterations: summary.completed,
                events: summary.events,
                reshards: summary.reshards,
                makespan_ms: summary.makespan_ms,
                p50_ms: summary.p50_ms,
                p99_ms: summary.p99_ms,
                fingerprint: summary.fingerprint,
                serve_queries: serve.queries,
                serve_p50_ms: serve.p50_ms,
                serve_p99_ms: serve.p99_ms,
                serve_hit_rate: serve.hit_rate,
                serve_fingerprint: serve.fingerprint,
                wall_ms: gate(wall_ms),
                events_per_sec: gate(events_per_sec),
            });
        }
    }
    // Acceptance criteria, asserted on every run of the sweep.
    let find = |scenario: &str, placement: &str| {
        points
            .iter()
            .find(|p| p.scenario == scenario && p.placement == placement)
            .unwrap_or_else(|| panic!("missing point {scenario}/{placement}"))
    };
    for strategy in Strategy::all() {
        let stationary = find("stationary", strategy.label());
        let flash = find("flash_crowd", strategy.label());
        assert!(
            flash.p99_ms > stationary.p99_ms,
            "{}: flash-crowd DES p99 ({}) must exceed stationary ({})",
            strategy.label(),
            flash.p99_ms,
            stationary.p99_ms,
        );
        assert_eq!(
            stationary.reshards,
            0,
            "{}: stationary traffic must not trigger re-shards",
            strategy.label(),
        );
    }
    assert!(
        points
            .iter()
            .any(|p| p.scenario == "drift_storm" && p.reshards >= 1),
        "the drift storm must trigger at least one controller re-shard",
    );
    ScenarioBenchReport {
        seed: cfg.seed,
        timed: cfg.include_timing,
        points,
    }
}

/// Runs the flash-crowd RecShard point once with a [`Collector`] attached:
/// the seeded smoke run whose JSONL/Chrome-trace/metrics artifacts CI
/// exports. The trace carries the scenario's `scenario_phase` events
/// (asserted), and the summary replays the sweep's point exactly.
pub fn traced_smoke(cfg: &ScenarioBenchConfig) -> (RunSummary, ObsBundle) {
    let model = scenario_model(cfg.tables);
    let profile = DatasetProfiler::profile_model(&model, cfg.profile_samples, cfg.seed);
    let system = bench_system(model.total_bytes(), cfg.gpus);
    let plan = Strategy::RecShard.plan(&model, &profile, &system);
    let spec = scenario_spec("flash_crowd", cfg.des_span_s());
    let mut collector = Collector::new();
    let summary = ClusterSimulator::new(&model, &plan, &profile, &system, cfg.cluster_config())
        .with_scenario(spec)
        .with_controller(controller_for(cfg, Strategy::RecShard))
        .with_obs(&mut collector)
        .run();
    let bundle = collector.finish();
    assert!(
        bundle
            .trace
            .records()
            .iter()
            .any(|r| r.event.name() == "scenario_phase"),
        "the traced flash-crowd run must emit scenario phase events"
    );
    (summary, bundle)
}

impl ScenarioBenchReport {
    /// Canonical JSON serialisation (the `BENCH_scenarios.json` payload):
    /// key order fixed, floats in `{:.9e}`, one point per line.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"bench\": \"workload_scenarios\",\n");
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"timed\": {},\n", self.timed));
        out.push_str("  \"timing_sentinel\": \"-1 = timing disabled for byte-stable output\",\n");
        out.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let f = |x: f64| format!("{x:.9e}");
            out.push_str(&format!(
                "    {{\"scenario\": \"{}\", \"placement\": \"{}\", \"gpus\": {}, \
                 \"iterations\": {}, \"events\": {}, \"reshards\": {}, \
                 \"makespan_ms\": {}, \"p50_ms\": {}, \"p99_ms\": {}, \
                 \"fingerprint\": \"{:#018x}\", \"serve_queries\": {}, \
                 \"serve_p50_ms\": {}, \"serve_p99_ms\": {}, \"serve_hit_rate\": {}, \
                 \"serve_fingerprint\": \"{:#018x}\", \
                 \"wall_ms\": {}, \"events_per_sec\": {}}}{}\n",
                p.scenario,
                p.placement,
                p.gpus,
                p.iterations,
                p.events,
                p.reshards,
                f(p.makespan_ms),
                f(p.p50_ms),
                f(p.p99_ms),
                p.fingerprint,
                p.serve_queries,
                f(p.serve_p50_ms),
                f(p.serve_p99_ms),
                f(p.serve_hit_rate),
                p.serve_fingerprint,
                f(p.wall_ms),
                f(p.events_per_sec),
                if i + 1 < self.points.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// FNV-1a fingerprint over the canonical JSON with timing fields
    /// blanked, so the value is identical whether or not timing ran.
    pub fn fingerprint(&self) -> u64 {
        let mut untimed = self.clone();
        untimed.timed = false;
        for p in &mut untimed.points {
            p.wall_ms = TIMING_DISABLED;
            p.events_per_sec = TIMING_DISABLED;
        }
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        for byte in untimed.to_json().bytes() {
            fnv_fold(&mut hash, byte as u64);
        }
        hash
    }
}

/// Extracts a quoted string field from one canonical-JSON point line.
fn field_str<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let key = format!("\"{name}\": \"");
    let start = line.find(&key)? + key.len();
    let rest = &line[start..];
    Some(&rest[..rest.find('"')?])
}

/// Parses the `(scenario, placement, gpus, iterations)` identity of one
/// baseline point line (the key the gates match on).
fn point_key(line: &str) -> Option<(String, String, usize, u64)> {
    Some((
        field_str(line, "scenario")?.to_string(),
        field_str(line, "placement")?.to_string(),
        field_num(line, "gpus")? as usize,
        field_num(line, "iterations")? as u64,
    ))
}

/// Compares a freshly computed (timed) report against a previously
/// committed `BENCH_scenarios.json` payload and returns one line per DES
/// wall-clock throughput regression below `1 - tolerance` of the
/// baseline's rate. Sentinel/missing points on either side are skipped, so
/// untimed runs and trimmed sweeps never false-positive.
pub fn throughput_regressions(
    current: &ScenarioBenchReport,
    baseline_json: &str,
    tolerance: f64,
) -> Vec<String> {
    let mut baseline = Vec::new(); // (key, events_per_sec)
    for line in baseline_json.lines() {
        let (Some(key), Some(rate)) = (point_key(line), field_num(line, "events_per_sec")) else {
            continue;
        };
        baseline.push((key, rate));
    }
    let mut regressions = Vec::new();
    for p in &current.points {
        if p.events_per_sec <= 0.0 {
            continue; // sentinel: this run was untimed
        }
        let key = (
            p.scenario.clone(),
            p.placement.clone(),
            p.gpus,
            p.iterations,
        );
        let Some(&(_, base)) = baseline.iter().find(|(k, _)| *k == key) else {
            continue;
        };
        if base <= 0.0 {
            continue; // baseline was untimed
        }
        if p.events_per_sec < base * (1.0 - tolerance) {
            regressions.push(format!(
                "{}/{} x {} iters: {:.0} events/s is more than {:.0}% below the \
                 baseline's {:.0} events/s",
                p.scenario,
                p.placement,
                p.iterations,
                p.events_per_sec,
                tolerance * 100.0,
                base,
            ));
        }
    }
    regressions
}

/// Compares both fingerprints of every point against a previously
/// committed `BENCH_scenarios.json` payload (matched on `scenario` ×
/// `placement` × `gpus` × `iterations`) and returns one line per drifted
/// fingerprint. Drift means the simulated behaviour changed —
/// `scenario_bench` *fails* on it unless `RECSHARD_BENCH_ALLOW_DRIFT=1`
/// acknowledges an intentional change. Points missing on either side are
/// skipped.
pub fn fingerprint_drift(current: &ScenarioBenchReport, baseline_json: &str) -> Vec<String> {
    let mut baseline = Vec::new(); // (key, des fingerprint, serve fingerprint)
    for line in baseline_json.lines() {
        let (Some(key), Some(des_fp), Some(serve_fp)) = (
            point_key(line),
            field_str(line, "fingerprint"),
            field_str(line, "serve_fingerprint"),
        ) else {
            continue;
        };
        baseline.push((key, des_fp.to_string(), serve_fp.to_string()));
    }
    let mut drifted = Vec::new();
    for p in &current.points {
        let key = (
            p.scenario.clone(),
            p.placement.clone(),
            p.gpus,
            p.iterations,
        );
        let Some((_, base_des, base_serve)) = baseline.iter().find(|(k, _, _)| *k == key) else {
            continue;
        };
        for (layer, fp, base) in [
            ("DES", p.fingerprint, base_des),
            ("serve", p.serve_fingerprint, base_serve),
        ] {
            let fp = format!("{fp:#018x}");
            if &fp != base {
                drifted.push(format!(
                    "{}/{} x {} iters: {layer} fingerprint {fp} differs from baseline {base}",
                    p.scenario, p.placement, p.iterations,
                ));
            }
        }
    }
    drifted
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_is_deterministic_and_locks_the_acceptance_criteria() {
        let cfg = ScenarioBenchConfig::tiny();
        let a = run_sweep(&cfg);
        let b = run_sweep(&cfg);
        assert_eq!(a, b, "same seed must reproduce the same sweep");
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.points.len(), SCENARIOS.len() * Strategy::all().len());
        for p in &a.points {
            assert_eq!(p.iterations, cfg.iterations);
            assert_eq!(p.serve_queries, cfg.serve_queries);
            assert!(p.p50_ms > 0.0 && p.p50_ms <= p.p99_ms);
            assert!(p.serve_p50_ms > 0.0 && p.serve_p50_ms <= p.serve_p99_ms);
            assert!((0.0..=1.0).contains(&p.serve_hit_rate));
            assert_eq!(p.wall_ms, TIMING_DISABLED);
            assert_eq!(p.events_per_sec, TIMING_DISABLED);
        }
        // run_sweep asserts these in-line; pin them here too so the lock is
        // visible where the artifact's tests live.
        let p99 = |scenario: &str, placement: &str| {
            a.points
                .iter()
                .find(|p| p.scenario == scenario && p.placement == placement)
                .expect("point must exist")
                .p99_ms
        };
        for s in Strategy::all() {
            assert!(p99("flash_crowd", s.label()) > p99("stationary", s.label()));
        }
        assert!(a
            .points
            .iter()
            .any(|p| p.scenario == "drift_storm" && p.reshards >= 1));
        assert!(a
            .points
            .iter()
            .filter(|p| p.scenario == "stationary")
            .all(|p| p.reshards == 0));
    }

    #[test]
    fn timing_mode_changes_json_but_not_fingerprint() {
        let mut cfg = ScenarioBenchConfig::tiny();
        cfg.iterations = 150;
        cfg.serve_queries = 150;
        cfg.serve_warmup = 50;
        let untimed = run_sweep(&cfg);
        cfg.include_timing = true;
        let timed = run_sweep(&cfg);
        assert_ne!(untimed.to_json(), timed.to_json());
        assert_eq!(untimed.fingerprint(), timed.fingerprint());
        assert!(timed.points[0].wall_ms >= 0.0);
        assert!(timed.points[0].events_per_sec > 0.0);
    }

    #[test]
    fn gates_catch_drift_on_either_fingerprint_and_skip_sentinels() {
        let mut cfg = ScenarioBenchConfig::tiny();
        cfg.iterations = 150;
        cfg.serve_queries = 150;
        cfg.serve_warmup = 50;
        cfg.include_timing = true;
        let report = run_sweep(&cfg);
        let baseline = report.to_json();

        assert!(throughput_regressions(&report, &baseline, 0.25).is_empty());
        assert!(fingerprint_drift(&report, &baseline).is_empty());

        let mut slowed = report.clone();
        for p in &mut slowed.points {
            p.events_per_sec *= 0.5;
        }
        assert_eq!(
            throughput_regressions(&slowed, &baseline, 0.25).len(),
            report.points.len()
        );
        assert!(throughput_regressions(&slowed, &baseline, 0.6).is_empty());

        let mut untimed = report.clone();
        for p in &mut untimed.points {
            p.wall_ms = TIMING_DISABLED;
            p.events_per_sec = TIMING_DISABLED;
        }
        assert!(throughput_regressions(&untimed, &baseline, 0.25).is_empty());

        // DES and serve fingerprints are gated independently.
        let mut des_drift = report.clone();
        des_drift.points[0].fingerprint ^= 1;
        let lines = fingerprint_drift(&des_drift, &baseline);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("DES"), "{lines:?}");

        let mut serve_drift = report.clone();
        serve_drift.points[1].serve_fingerprint ^= 1;
        let lines = fingerprint_drift(&serve_drift, &baseline);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("serve"), "{lines:?}");

        let mut trimmed = report.clone();
        trimmed.points.truncate(1);
        assert!(throughput_regressions(&trimmed, &baseline, 0.25).is_empty());
        assert!(fingerprint_drift(&trimmed, &baseline).is_empty());
    }

    #[test]
    fn traced_smoke_matches_untraced_run_and_emits_phase_events() {
        let mut cfg = ScenarioBenchConfig::tiny();
        cfg.iterations = 150;
        cfg.serve_queries = 150;
        cfg.serve_warmup = 50;
        let (summary, bundle) = traced_smoke(&cfg);
        let sweep = run_sweep(&cfg);
        let point = sweep
            .points
            .iter()
            .find(|p| p.scenario == "flash_crowd" && p.placement == Strategy::RecShard.label())
            .expect("flash-crowd RecShard point must exist");
        assert_eq!(
            summary.fingerprint, point.fingerprint,
            "the traced smoke run must replay the sweep point exactly"
        );
        let jsonl = bundle.trace.to_jsonl();
        assert_eq!(jsonl.lines().count(), bundle.trace.len());
        assert!(jsonl.contains("scenario_phase"));
        let chrome = bundle.trace.to_chrome();
        assert!(chrome.starts_with("{\"traceEvents\":["));
    }
}
