//! Best-first branch and bound over LP relaxations.

use crate::error::MilpError;
use crate::model::{Model, Sense, VarKind};
use crate::simplex::{LpProblem, EPS};
use crate::solution::{Solution, SolveStats, Status};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Integrality tolerance: values within this distance of an integer are
/// treated as integral.
const INT_TOL: f64 = 1e-6;

struct Node {
    /// LP relaxation bound of this node in *minimization* form (lower bound on
    /// any integer solution in the subtree).
    bound: f64,
    lower: Vec<f64>,
    upper: Vec<f64>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; we want the node with the *smallest*
        // minimization bound first (best-first search).
        other
            .bound
            .partial_cmp(&self.bound)
            .unwrap_or(Ordering::Equal)
    }
}

/// Branch-and-bound driver for a [`Model`].
pub struct BranchAndBound<'a> {
    model: &'a Model,
}

impl<'a> BranchAndBound<'a> {
    /// Creates a driver for the model.
    pub fn new(model: &'a Model) -> Self {
        Self { model }
    }

    /// Solves the MILP.
    ///
    /// # Errors
    ///
    /// See [`MilpError`].
    pub fn solve(&self) -> Result<Solution, MilpError> {
        let model = self.model;
        let int_vars: Vec<usize> = model
            .variables()
            .iter()
            .enumerate()
            .filter(|(_, v)| matches!(v.kind, VarKind::Integer | VarKind::Binary))
            .map(|(i, _)| i)
            .collect();

        let root_lower: Vec<f64> = model.variables().iter().map(|v| v.lower).collect();
        let root_upper: Vec<f64> = model.variables().iter().map(|v| v.upper).collect();

        let minimize_sign = if model.sense() == Sense::Maximize {
            -1.0
        } else {
            1.0
        };
        let mut stats = SolveStats::default();

        // Solve the root relaxation first so pure LPs exit immediately.
        let root_lp = LpProblem::from_model(model, root_lower.clone(), root_upper.clone());
        let root_sol = root_lp.solve()?;
        stats.simplex_pivots += root_sol.pivots;
        stats.nodes_explored += 1;

        if int_vars.is_empty() || Self::fractional_var(&root_sol.values, &int_vars).is_none() {
            let values = Self::snap(&root_sol.values, &int_vars);
            let objective = model.objective_value(&values);
            return Ok(Solution::new(Status::Optimal, objective, values, stats));
        }

        let mut heap = BinaryHeap::new();
        heap.push(Node {
            bound: minimize_sign * root_sol.objective,
            lower: root_lower,
            upper: root_upper,
        });

        let mut incumbent: Option<(f64, Vec<f64>)> = None; // minimization objective, values
        let node_limit = model.node_limit();

        while let Some(node) = heap.pop() {
            if stats.nodes_explored >= node_limit {
                return match incumbent {
                    Some((obj_min, values)) => Ok(Solution::new(
                        Status::Feasible,
                        minimize_sign * obj_min,
                        values,
                        stats,
                    )),
                    None => Err(MilpError::NodeLimit { limit: node_limit }),
                };
            }
            // Prune against the incumbent.
            if let Some((best, _)) = &incumbent {
                if node.bound >= *best - 1e-9 {
                    continue;
                }
            }
            let lp = LpProblem::from_model(model, node.lower.clone(), node.upper.clone());
            let lp_sol = match lp.solve() {
                Ok(s) => s,
                Err(MilpError::Infeasible) => continue,
                Err(e) => return Err(e),
            };
            stats.nodes_explored += 1;
            stats.simplex_pivots += lp_sol.pivots;
            let bound_min = minimize_sign * lp_sol.objective;
            if let Some((best, _)) = &incumbent {
                if bound_min >= *best - 1e-9 {
                    continue;
                }
            }

            match Self::fractional_var(&lp_sol.values, &int_vars) {
                None => {
                    // Integer-feasible: candidate incumbent.
                    let snapped = Self::snap(&lp_sol.values, &int_vars);
                    let obj_min = minimize_sign * model.objective_value(&snapped);
                    let better = incumbent
                        .as_ref()
                        .map(|(best, _)| obj_min < *best - 1e-12)
                        .unwrap_or(true);
                    if better && model.is_feasible(&snapped, 1e-5) {
                        incumbent = Some((obj_min, snapped));
                    }
                }
                Some((var, value)) => {
                    // Branch: var <= floor(value) and var >= ceil(value).
                    let mut down = Node {
                        bound: bound_min,
                        lower: node.lower.clone(),
                        upper: node.upper.clone(),
                    };
                    down.upper[var] = value.floor();
                    if down.lower[var] <= down.upper[var] + EPS {
                        heap.push(down);
                    }
                    let mut up = Node {
                        bound: bound_min,
                        lower: node.lower,
                        upper: node.upper,
                    };
                    up.lower[var] = value.ceil();
                    if up.lower[var] <= up.upper[var] + EPS {
                        heap.push(up);
                    }
                }
            }
        }

        match incumbent {
            Some((obj_min, values)) => Ok(Solution::new(
                Status::Optimal,
                minimize_sign * obj_min,
                values,
                stats,
            )),
            None => Err(MilpError::Infeasible),
        }
    }

    /// Returns the most fractional integer variable, if any.
    fn fractional_var(values: &[f64], int_vars: &[usize]) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64, f64)> = None;
        for &i in int_vars {
            let v = values[i];
            let frac = (v - v.round()).abs();
            if frac > INT_TOL {
                let distance_to_half = (v - v.floor() - 0.5).abs();
                if best.map(|(_, _, d)| distance_to_half < d).unwrap_or(true) {
                    best = Some((i, v, distance_to_half));
                }
            }
        }
        best.map(|(i, v, _)| (i, v))
    }

    /// Rounds integer variables to the nearest integer.
    fn snap(values: &[f64], int_vars: &[usize]) -> Vec<f64> {
        let mut out = values.to_vec();
        for &i in int_vars {
            out[i] = out[i].round();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ConstraintSense;

    #[test]
    fn knapsack_exact() {
        // max 10a + 13b + 7c + 4d, weights 3,4,2,1 <= 7, binary.
        // Optimal: b + c + d = 24 (weight 7);  a + c + d = 21, a + b = 23.
        let mut m = Model::new(Sense::Maximize);
        let vals = [10.0, 13.0, 7.0, 4.0];
        let weights = [3.0, 4.0, 2.0, 1.0];
        let vars: Vec<_> = (0..4)
            .map(|i| m.add_binary(format!("x{i}"), vals[i]))
            .collect();
        m.add_constraint(
            "cap",
            vars.iter().zip(weights).map(|(&v, w)| (v, w)).collect(),
            ConstraintSense::Le,
            7.0,
        );
        let sol = m.solve().unwrap();
        assert_eq!(sol.status(), Status::Optimal);
        assert!(
            (sol.objective() - 24.0).abs() < 1e-6,
            "obj {}",
            sol.objective()
        );
        assert_eq!(sol.value(vars[0]).round() as i64, 0);
        assert_eq!(sol.value(vars[1]).round() as i64, 1);
        assert_eq!(sol.value(vars[2]).round() as i64, 1);
        assert_eq!(sol.value(vars[3]).round() as i64, 1);
    }

    #[test]
    fn integer_rounding_matters() {
        // max x + y s.t. 2x + 2y <= 5, integer → optimum 2 (not 2.5).
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Integer, 0.0, f64::INFINITY, 1.0);
        let y = m.add_var("y", VarKind::Integer, 0.0, f64::INFINITY, 1.0);
        m.add_constraint("c", vec![(x, 2.0), (y, 2.0)], ConstraintSense::Le, 5.0);
        let sol = m.solve().unwrap();
        assert!((sol.objective() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn pure_lp_passes_through() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 1.0);
        m.add_constraint("c", vec![(x, 1.0)], ConstraintSense::Ge, 2.5);
        let sol = m.solve().unwrap();
        assert!((sol.objective() - 2.5).abs() < 1e-9);
        assert_eq!(sol.stats().nodes_explored, 1);
    }

    #[test]
    fn assignment_problem_min_max_style() {
        // 3 jobs, 2 machines, each job on exactly one machine, minimize the
        // maximum machine load (the RecShard MILP's min-max structure).
        // Costs: 4, 3, 2 → optimal makespan 5 (4+... no: {4,} vs {3,2} = 5; or {4,2}=6/{3}).
        let mut m = Model::new(Sense::Minimize);
        let costs = [4.0, 3.0, 2.0];
        let c = m.add_continuous("C", 1.0);
        let mut assign = Vec::new();
        for j in 0..3 {
            let row: Vec<_> = (0..2)
                .map(|g| m.add_binary(format!("p_{g}_{j}"), 0.0))
                .collect();
            m.add_constraint(
                format!("one_gpu_{j}"),
                row.iter().map(|&v| (v, 1.0)).collect(),
                ConstraintSense::Eq,
                1.0,
            );
            assign.push(row);
        }
        for g in 0..2 {
            let mut terms: Vec<_> = (0..3).map(|j| (assign[j][g], costs[j])).collect();
            terms.push((c, -1.0));
            m.add_constraint(format!("load_{g}"), terms, ConstraintSense::Le, 0.0);
        }
        let sol = m.solve().unwrap();
        assert!(
            (sol.objective() - 5.0).abs() < 1e-6,
            "makespan {}",
            sol.objective()
        );
    }

    #[test]
    fn infeasible_integer_program() {
        // x binary, x >= 0.4, x <= 0.6 → no integer solution.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_binary("x", 1.0);
        m.add_constraint("lo", vec![(x, 1.0)], ConstraintSense::Ge, 0.4);
        m.add_constraint("hi", vec![(x, 1.0)], ConstraintSense::Le, 0.6);
        assert_eq!(m.solve(), Err(MilpError::Infeasible));
    }

    #[test]
    fn equality_partitioned_binaries() {
        // Choose exactly one of three options, maximize value.
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary("a", 1.0);
        let b = m.add_binary("b", 5.0);
        let c = m.add_binary("c", 3.0);
        m.add_constraint(
            "pick1",
            vec![(a, 1.0), (b, 1.0), (c, 1.0)],
            ConstraintSense::Eq,
            1.0,
        );
        let sol = m.solve().unwrap();
        assert!((sol.objective() - 5.0).abs() < 1e-6);
        assert_eq!(sol.value(b).round() as i64, 1);
    }

    #[test]
    fn node_limit_reported() {
        // A hard-ish knapsack with a node limit of 1 and no chance to find an
        // incumbent at the root.
        let mut m = Model::new(Sense::Maximize);
        let n = 12;
        let vars: Vec<_> = (0..n)
            .map(|i| m.add_binary(format!("x{i}"), 1.0 + (i as f64 % 3.0) * 0.37))
            .collect();
        m.add_constraint(
            "cap",
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (v, 1.0 + (i as f64 * 0.77) % 2.0))
                .collect(),
            ConstraintSense::Le,
            3.7,
        );
        m.set_node_limit(1);
        match m.solve() {
            Err(MilpError::NodeLimit { limit }) => assert_eq!(limit, 1),
            Ok(sol) => assert_eq!(sol.status(), Status::Feasible),
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn mixed_integer_and_continuous() {
        // max 2x + 3y, x integer <= 3.7, y continuous <= 2.5, x + y <= 5.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Integer, 0.0, 3.7, 2.0);
        let y = m.add_var("y", VarKind::Continuous, 0.0, 2.5, 3.0);
        m.add_constraint("sum", vec![(x, 1.0), (y, 1.0)], ConstraintSense::Le, 5.0);
        let sol = m.solve().unwrap();
        // x=3 (integer), y=2 → 12; x=2,y=2.5 → 11.5. Optimal 12... but x+y<=5
        // allows x=3,y=2 exactly. Also x=2.5 not allowed.
        assert!(
            (sol.objective() - 12.0).abs() < 1e-6,
            "obj {}",
            sol.objective()
        );
        assert!((sol.value(x) - 3.0).abs() < 1e-6);
    }
}
