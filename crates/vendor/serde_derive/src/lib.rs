//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types so they
//! are ready for serialization once the real `serde` is available, but no code
//! in the repository serializes anything yet. These derives therefore expand
//! to nothing: the attribute is accepted and type definitions stay unchanged.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
