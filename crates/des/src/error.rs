//! Typed configuration errors of the cluster simulator.
//!
//! Bandwidths, latencies and arrival parameters come from user-facing
//! configuration; a zero or negative bandwidth used to slip through and
//! silently turn into `inf`/NaN transfer seconds (which the float→integer
//! cast then collapsed to `0` or `u64::MAX` nanoseconds). Validation now
//! happens up front in [`ClusterSimulator::try_new`](crate::ClusterSimulator::try_new)
//! and surfaces one of these variants instead.

/// A rejected cluster-simulation configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum DesError {
    /// A configured bandwidth is zero, negative or non-finite. Dividing by
    /// it would produce non-finite transfer seconds.
    NonPositiveBandwidth {
        /// Which configuration field was rejected.
        name: &'static str,
        /// The offending value, GB/s.
        value: f64,
    },
    /// A configured duration (latency/overhead) is negative or non-finite.
    InvalidDuration {
        /// Which configuration field was rejected.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// An arrival-process parameter is negative or non-finite; drawing gaps
    /// from it would panic or hang the open-loop schedule.
    InvalidArrival {
        /// Which arrival parameter was rejected.
        name: &'static str,
        /// The offending value, milliseconds.
        value: f64,
    },
    /// Plan and system disagree on the number of GPUs.
    GpuCountMismatch {
        /// GPUs the plan shards across.
        plan: usize,
        /// GPUs the system provides.
        system: usize,
    },
    /// The run would simulate nothing (zero iterations or an empty batch).
    EmptyRun {
        /// Human-readable description of the degenerate dimension.
        what: &'static str,
    },
}

impl std::fmt::Display for DesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DesError::NonPositiveBandwidth { name, value } => write!(
                f,
                "{name} must be a positive finite bandwidth in GB/s, got {value}"
            ),
            DesError::InvalidDuration { name, value } => write!(
                f,
                "{name} must be a non-negative finite duration, got {value}"
            ),
            DesError::InvalidArrival { name, value } => write!(
                f,
                "{name} must be a non-negative finite interval in ms, got {value}"
            ),
            DesError::GpuCountMismatch { plan, system } => write!(
                f,
                "plan/system GPU count mismatch: plan shards {plan} GPUs, system has {system}"
            ),
            DesError::EmptyRun { what } => write!(f, "{what}"),
        }
    }
}

impl std::error::Error for DesError {}

/// `Ok(value)` when `value` is a positive finite bandwidth.
pub(crate) fn check_bandwidth(name: &'static str, value: f64) -> Result<f64, DesError> {
    if value.is_finite() && value > 0.0 {
        Ok(value)
    } else {
        Err(DesError::NonPositiveBandwidth { name, value })
    }
}

/// `Ok(value)` when `value` is a non-negative finite duration.
pub(crate) fn check_duration(name: &'static str, value: f64) -> Result<f64, DesError> {
    if value.is_finite() && value >= 0.0 {
        Ok(value)
    } else {
        Err(DesError::InvalidDuration { name, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_check_rejects_nonpositive_and_nonfinite() {
        assert!(check_bandwidth("bw", 25.0).is_ok());
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = check_bandwidth("bw", bad).unwrap_err();
            assert!(matches!(
                err,
                DesError::NonPositiveBandwidth { name: "bw", .. }
            ));
        }
    }

    #[test]
    fn duration_check_accepts_zero_but_rejects_negative_and_nonfinite() {
        assert!(check_duration("lat", 0.0).is_ok());
        assert!(check_duration("lat", 20.0).is_ok());
        for bad in [-0.5, f64::NAN, f64::INFINITY] {
            assert!(check_duration("lat", bad).is_err());
        }
    }

    #[test]
    fn display_is_actionable() {
        let msg = DesError::NonPositiveBandwidth {
            name: "alltoall_bandwidth_gbps",
            value: 0.0,
        }
        .to_string();
        assert!(msg.contains("alltoall_bandwidth_gbps"));
        assert!(msg.contains("positive"));
        let msg = DesError::GpuCountMismatch { plan: 4, system: 2 }.to_string();
        assert!(msg.contains("plan/system GPU count mismatch"));
    }
}
