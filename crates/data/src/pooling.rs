//! Pooling-factor distributions.
//!
//! A sparse feature's *pooling factor* is the number of embedding rows a
//! single training sample reads from the feature's table (Section 3.2). The
//! paper reports per-feature average pooling factors ranging from 1 to ~200,
//! with skewed, long-tailed per-sample distributions that are not well
//! described by a single family — the paper therefore summarises each feature
//! by the *mean* pooling factor (which deliberately over-estimates demand).
//!
//! [`PoolingSpec`] models the per-sample pooling distribution as a truncated
//! geometric-like distribution around a target mean, which produces the same
//! long-tailed, integer-valued behaviour.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-feature distribution of the number of activated categories per sample.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum PoolingSpec {
    /// Every present sample activates exactly `1` category (one-hot features,
    /// e.g. "country of the user").
    #[default]
    OneHot,
    /// Every present sample activates exactly `n` categories.
    Constant(u32),
    /// Long-tailed distribution with the given mean and maximum
    /// (a truncated shifted-geometric distribution: `1 + Geometric(p)` capped
    /// at `max`), modelling multi-hot history features ("pages recently
    /// viewed").
    LongTail {
        /// Target mean pooling factor (must be `>= 1`).
        mean: f64,
        /// Hard cap on the per-sample pooling factor (e.g. a history-length
        /// truncation applied by the feature pipeline).
        max: u32,
    },
}

impl PoolingSpec {
    /// Builds a long-tail spec with the conventional cap of `4 * mean`.
    pub fn long_tail(mean: f64) -> Self {
        assert!(
            mean >= 1.0 && mean.is_finite(),
            "mean pooling factor must be >= 1"
        );
        PoolingSpec::LongTail {
            mean,
            max: (mean * 4.0).ceil().max(2.0) as u32,
        }
    }

    /// The average pooling factor of this distribution.
    ///
    /// For [`PoolingSpec::LongTail`] this is the configured mean (truncation
    /// bias is small for the default cap and is intentionally ignored, mirroring
    /// the paper's preference for slight over-estimation).
    pub fn mean(&self) -> f64 {
        match *self {
            PoolingSpec::OneHot => 1.0,
            PoolingSpec::Constant(n) => n as f64,
            PoolingSpec::LongTail { mean, .. } => mean,
        }
    }

    /// Maximum possible per-sample pooling factor.
    pub fn max(&self) -> u32 {
        match *self {
            PoolingSpec::OneHot => 1,
            PoolingSpec::Constant(n) => n,
            PoolingSpec::LongTail { max, .. } => max,
        }
    }

    /// Draws the pooling factor for one present sample (always `>= 1`).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        match *self {
            PoolingSpec::OneHot => 1,
            PoolingSpec::Constant(n) => n.max(1),
            PoolingSpec::LongTail { mean, max } => {
                // 1 + Geometric(p) has mean 1 + (1-p)/p = 1/p, so p = 1/mean.
                let p = (1.0 / mean).clamp(1e-6, 1.0);
                let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                let g = (u.ln() / (1.0 - p).ln()).floor() as u64;
                ((1 + g).min(max as u64)) as u32
            }
        }
    }

    /// Returns a copy of this spec with the mean scaled by `factor`
    /// (used by the temporal drift model, Figure 9).
    pub fn with_mean_scaled(&self, factor: f64) -> Self {
        match *self {
            PoolingSpec::OneHot => PoolingSpec::OneHot,
            PoolingSpec::Constant(n) => {
                PoolingSpec::Constant(((n as f64 * factor).round().max(1.0)) as u32)
            }
            PoolingSpec::LongTail { mean, max } => PoolingSpec::LongTail {
                mean: (mean * factor).max(1.0),
                max: ((max as f64 * factor).ceil().max(2.0)) as u32,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn seeded() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(77)
    }

    #[test]
    fn one_hot_always_one() {
        let mut rng = seeded();
        for _ in 0..100 {
            assert_eq!(PoolingSpec::OneHot.sample(&mut rng), 1);
        }
        assert_eq!(PoolingSpec::OneHot.mean(), 1.0);
    }

    #[test]
    fn constant_is_constant() {
        let mut rng = seeded();
        let spec = PoolingSpec::Constant(7);
        for _ in 0..100 {
            assert_eq!(spec.sample(&mut rng), 7);
        }
    }

    #[test]
    fn long_tail_mean_close_to_target() {
        let mut rng = seeded();
        for target in [2.0, 10.0, 50.0, 150.0] {
            let spec = PoolingSpec::long_tail(target);
            let n = 50_000;
            let total: u64 = (0..n).map(|_| spec.sample(&mut rng) as u64).sum();
            let got = total as f64 / n as f64;
            assert!(
                (got - target).abs() / target < 0.12,
                "target mean {target}, got {got}"
            );
        }
    }

    #[test]
    fn long_tail_respects_bounds() {
        let mut rng = seeded();
        let spec = PoolingSpec::LongTail {
            mean: 20.0,
            max: 64,
        };
        for _ in 0..20_000 {
            let v = spec.sample(&mut rng);
            assert!((1..=64).contains(&v));
        }
    }

    #[test]
    fn drift_scaling_changes_mean() {
        let spec = PoolingSpec::long_tail(40.0);
        let scaled = spec.with_mean_scaled(1.1);
        assert!((scaled.mean() - 44.0).abs() < 1e-9);
        let down = spec.with_mean_scaled(0.5);
        assert!((down.mean() - 20.0).abs() < 1e-9);
        // Never drops below 1.
        assert!(PoolingSpec::long_tail(1.0).with_mean_scaled(0.1).mean() >= 1.0);
    }

    #[test]
    #[should_panic(expected = "mean pooling factor must be >= 1")]
    fn long_tail_rejects_sub_one_mean() {
        let _ = PoolingSpec::long_tail(0.5);
    }
}
