//! Figure 6: per-feature average pooling factor (6a) and coverage (6b).

#![allow(clippy::print_stdout)]
use recshard_bench::ExperimentConfig;
use recshard_data::RmKind;
use recshard_stats::Summary;

fn main() {
    let cfg = ExperimentConfig::from_env();
    let profile = cfg.setup(RmKind::Rm1).profile;

    println!("# Figure 6a/6b: average pooling factor and coverage per feature");
    println!("| feature | avg pooling factor | coverage |");
    println!("|---------|--------------------|----------|");
    for p in profile.profiles().iter().step_by(10) {
        println!("| {} | {:.2} | {:.3} |", p.id, p.avg_pooling, p.coverage);
    }

    let poolings: Vec<f64> = profile.profiles().iter().map(|p| p.avg_pooling).collect();
    let coverages: Vec<f64> = profile.profiles().iter().map(|p| p.coverage).collect();
    let pool_summary = Summary::of(&poolings);
    let cov_summary = Summary::of(&coverages);
    println!();
    println!(
        "Pooling factor min/max/mean/std: {pool_summary} — spanning one-hot features to \
         ~{:.0}-hot history features (order-of-magnitude bandwidth differences, Figure 6a).",
        pool_summary.max
    );
    println!(
        "Coverage min/max/mean/std: {cov_summary} — from features present in <{:.0}% of samples \
         to always-present ones (Figure 6b).",
        cov_summary.min * 100.0
    );
}
