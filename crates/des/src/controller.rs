//! Online re-sharding under feature drift.
//!
//! Section 3.5 of the paper shows per-feature statistics drift over months of
//! training data, so a placement that was optimal at month 0 slowly degrades.
//! The static pipeline re-runs RecShard offline; the cluster simulator
//! instead carries an [`ReshardController`] that *watches the running
//! cluster*: every `check_every_iterations` completed iterations it compares
//! per-GPU busy time over the elapsed window, and when the busiest GPU
//! exceeds the mean by [`ReshardPolicy::imbalance_threshold`], it re-profiles
//! the (drifted) workload, asks its plan solver for a fresh
//! [`ShardingPlan`], and installs it — charging every station a migration
//! stall proportional to the embedding bytes that change residency.

use crate::time::SimTime;
use recshard_data::{DriftModel, ModelSpec};
use recshard_sharding::{ShardingPlan, SystemSpec};
use recshard_stats::{DatasetProfile, DatasetProfiler};
use serde::{Deserialize, Serialize};

/// When and how strongly the training-data distribution drifts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftSchedule {
    /// The per-class drift trajectories (Figure 9).
    pub drift: DriftModel,
    /// How many training iterations correspond to one month of data. The
    /// simulator advances the workload's month every this many *arrived*
    /// batches, up to the drift model's horizon.
    pub iterations_per_month: u64,
}

impl DriftSchedule {
    /// A paper-like drift trajectory advancing one month every
    /// `iterations_per_month` iterations.
    pub fn paper_like(iterations_per_month: u64) -> Self {
        assert!(
            iterations_per_month > 0,
            "need at least one iteration per month"
        );
        Self {
            drift: DriftModel::paper_like(),
            iterations_per_month,
        }
    }

    /// The drifted month an iteration index falls into (clamped to the drift
    /// horizon).
    pub fn month_of_iteration(&self, iter: u64) -> u32 {
        ((iter / self.iterations_per_month) as u32).min(self.drift.months())
    }
}

/// Tunables of the online re-sharding controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReshardPolicy {
    /// Completed iterations between imbalance checks.
    pub check_every_iterations: u64,
    /// Trigger threshold on `max(per-GPU busy) / mean(per-GPU busy)` over the
    /// window since the last check. `1.0` means perfectly balanced; the
    /// controller fires above the threshold.
    pub imbalance_threshold: f64,
    /// Bandwidth at which embedding rows can be migrated between residencies
    /// during a re-shard, in GB/s (bounded by the UVM interconnect).
    pub migration_bandwidth_gbps: f64,
    /// Training samples profiled when re-solving the plan.
    pub profile_samples: usize,
    /// Seed for the re-profiling pass (kept separate from the workload
    /// stream so re-sharding does not perturb it).
    pub profile_seed: u64,
}

impl Default for ReshardPolicy {
    fn default() -> Self {
        Self {
            check_every_iterations: 500,
            imbalance_threshold: 1.25,
            migration_bandwidth_gbps: 16.0,
            profile_samples: 2_000,
            profile_seed: 0x5EED_CAFE,
        }
    }
}

/// Callback that solves for a new plan given the freshly profiled (possibly
/// drifted) workload. The fourth argument is the *currently installed* plan,
/// so warm-startable solvers can seed the re-solve from it (carrying the
/// previous assignment into the new plan keeps migrations small). Returning
/// `None` keeps the current plan (e.g. when the solver deems the system
/// infeasible).
pub type PlanSolver =
    dyn Fn(&ModelSpec, &DatasetProfile, &SystemSpec, Option<&ShardingPlan>) -> Option<ShardingPlan>;

/// The controller: drift-aware imbalance watchdog plus plan-swap machinery.
pub struct ReshardController {
    policy: ReshardPolicy,
    solver: Box<PlanSolver>,
    /// Per-GPU busy counters at the last check (the window baseline).
    window_baseline_ns: Vec<u64>,
    reshard_count: u32,
}

impl std::fmt::Debug for ReshardController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReshardController")
            .field("policy", &self.policy)
            .field("reshard_count", &self.reshard_count)
            .finish_non_exhaustive()
    }
}

/// Outcome of one controller check.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckOutcome {
    /// Busy times were balanced enough; nothing to do.
    Balanced {
        /// The observed `max/mean` busy ratio.
        imbalance: f64,
    },
    /// The controller re-solved and produced a new plan to install.
    Reshard {
        /// The observed `max/mean` busy ratio that tripped the threshold.
        imbalance: f64,
        /// The freshly solved plan.
        plan: ShardingPlan,
        /// The profile used to solve (and to materialise remap tables).
        profile: DatasetProfile,
        /// Stall charged to every station while rows migrate, in ns.
        migration_ns: u64,
    },
}

impl ReshardController {
    /// Creates a controller around a plan solver.
    pub fn new(policy: ReshardPolicy, solver: Box<PlanSolver>) -> Self {
        assert!(
            policy.check_every_iterations > 0,
            "check interval must be non-zero"
        );
        assert!(
            policy.imbalance_threshold >= 1.0,
            "imbalance threshold below 1 always fires"
        );
        assert!(
            policy.migration_bandwidth_gbps.is_finite() && policy.migration_bandwidth_gbps > 0.0,
            "migration bandwidth must be positive and finite, got {}",
            policy.migration_bandwidth_gbps
        );
        Self {
            policy,
            solver,
            window_baseline_ns: Vec::new(),
            reshard_count: 0,
        }
    }

    /// The active policy.
    pub fn policy(&self) -> &ReshardPolicy {
        &self.policy
    }

    /// Number of re-shards performed so far.
    pub fn reshard_count(&self) -> u32 {
        self.reshard_count
    }

    /// Whether a check is due after `completed` iterations.
    pub fn check_due(&self, completed: u64) -> bool {
        completed > 0 && completed.is_multiple_of(self.policy.check_every_iterations)
    }

    /// Runs one imbalance check over the busy-time window since the previous
    /// check and, if the threshold trips, re-profiles and re-solves.
    ///
    /// `busy_ns` is the cumulative per-GPU busy time, `model` the *current*
    /// (drifted) workload model, and `current_plan` the installed plan.
    pub fn check(
        &mut self,
        busy_ns: &[u64],
        model: &ModelSpec,
        current_plan: &ShardingPlan,
        system: &SystemSpec,
    ) -> CheckOutcome {
        if self.window_baseline_ns.len() != busy_ns.len() {
            if self.window_baseline_ns.is_empty() {
                // First check of the run: the window is everything since
                // the start.
                self.window_baseline_ns = vec![0; busy_ns.len()];
            } else {
                // Topology changed (GPUs added or removed) mid-run: the
                // cumulative busy counters are incomparable with the old
                // baseline. Re-baseline from the *current* counters — the
                // first post-change window is then empty (imbalance 1.0)
                // instead of comparing cumulative busy time against zero
                // and firing a phantom re-shard.
                self.window_baseline_ns = busy_ns.to_vec();
            }
        }
        let window: Vec<u64> = busy_ns
            .iter()
            .zip(&self.window_baseline_ns)
            .map(|(&now, &base)| now.saturating_sub(base))
            .collect();
        self.window_baseline_ns.copy_from_slice(busy_ns);

        let max = window.iter().copied().max().unwrap_or(0) as f64;
        let mean = window.iter().sum::<u64>() as f64 / window.len().max(1) as f64;
        let imbalance = if mean > 0.0 { max / mean } else { 1.0 };
        if imbalance <= self.policy.imbalance_threshold {
            return CheckOutcome::Balanced { imbalance };
        }

        let profile = DatasetProfiler::profile_model(
            model,
            self.policy.profile_samples,
            self.policy.profile_seed ^ self.reshard_count as u64,
        );
        let Some(plan) = (self.solver)(model, &profile, system, Some(current_plan)) else {
            return CheckOutcome::Balanced { imbalance };
        };
        if plan.placements() == current_plan.placements() {
            return CheckOutcome::Balanced { imbalance };
        }
        let migration_ns = self.migration_ns(current_plan, &plan);
        self.reshard_count += 1;
        CheckOutcome::Reshard {
            imbalance,
            plan,
            profile,
            migration_ns,
        }
    }

    /// Time to migrate from `old` to `new`: every HBM-resident byte that
    /// changes GPU moves once, and every row promoted/demoted between tiers
    /// on the same GPU crosses the UVM link once.
    pub fn migration_ns(&self, old: &ShardingPlan, new: &ShardingPlan) -> u64 {
        let mut bytes: u64 = 0;
        for (a, b) in old.placements().iter().zip(new.placements()) {
            debug_assert_eq!(a.table, b.table);
            if a.gpu != b.gpu {
                bytes += a.hbm_bytes() + b.hbm_bytes();
            } else {
                bytes += a.hbm_rows.abs_diff(b.hbm_rows) * a.row_bytes;
            }
        }
        let seconds = bytes as f64 / (self.policy.migration_bandwidth_gbps * 1e9);
        SimTime::saturating_ns_from_secs(seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recshard_data::ModelSpec;
    use recshard_sharding::{GreedySharder, LookupCost, SizeCost, SystemSpec};
    use recshard_stats::DatasetProfiler;

    fn greedy_solver() -> Box<PlanSolver> {
        Box::new(|model, profile, system, _prev| {
            GreedySharder::new(SizeCost)
                .shard(model, profile, system)
                .ok()
        })
    }

    fn setup() -> (ModelSpec, ShardingPlan, SystemSpec) {
        let model = ModelSpec::small(6, 3);
        let profile = DatasetProfiler::profile_model(&model, 1_000, 1);
        let system = SystemSpec::uniform(2, u64::MAX / 4, u64::MAX / 4, 1555.0, 16.0);
        let plan = GreedySharder::new(SizeCost)
            .shard(&model, &profile, &system)
            .unwrap();
        (model, plan, system)
    }

    #[test]
    fn balanced_window_does_not_fire() {
        let (model, plan, system) = setup();
        let mut c = ReshardController::new(ReshardPolicy::default(), greedy_solver());
        let outcome = c.check(&[100, 100], &model, &plan, &system);
        assert!(matches!(outcome, CheckOutcome::Balanced { .. }));
        assert_eq!(c.reshard_count(), 0);
    }

    #[test]
    fn imbalance_triggers_reshard_when_solver_moves_tables() {
        let (model, plan, system) = setup();
        // Different cost function ⇒ a different plan, so a fired check swaps.
        let solver: Box<PlanSolver> =
            Box::new(|m, p, s, _prev| GreedySharder::new(LookupCost).shard(m, p, s).ok());
        let mut c = ReshardController::new(ReshardPolicy::default(), solver);
        let outcome = c.check(&[1_000, 10], &model, &plan, &system);
        match outcome {
            CheckOutcome::Reshard {
                imbalance,
                plan: new_plan,
                ..
            } => {
                assert!(imbalance > 1.25);
                assert_ne!(new_plan.placements(), plan.placements());
                assert_eq!(c.reshard_count(), 1);
            }
            other => panic!("expected a reshard, got {other:?}"),
        }
    }

    #[test]
    fn identical_replacement_plan_is_ignored() {
        let (model, plan, system) = setup();
        // The same size-based solver reproduces the same plan on the
        // unchanged model, so even a huge imbalance cannot thrash.
        let mut c = ReshardController::new(ReshardPolicy::default(), greedy_solver());
        let outcome = c.check(&[1_000_000, 1], &model, &plan, &system);
        assert!(matches!(outcome, CheckOutcome::Balanced { .. }));
        assert_eq!(c.reshard_count(), 0);
    }

    #[test]
    fn window_is_differential() {
        let (model, plan, system) = setup();
        let mut c = ReshardController::new(ReshardPolicy::default(), greedy_solver());
        // First window hugely imbalanced — but solver returns the same plan,
        // so nothing installs; the baseline still advances.
        let _ = c.check(&[1_000, 10], &model, &plan, &system);
        // Second window adds equal increments: balanced even though the
        // cumulative totals remain skewed.
        let outcome = c.check(&[1_100, 110], &model, &plan, &system);
        match outcome {
            CheckOutcome::Balanced { imbalance } => assert!((imbalance - 1.0).abs() < 1e-9),
            other => panic!("expected balanced, got {other:?}"),
        }
    }

    #[test]
    fn topology_growth_rebaselines_instead_of_firing() {
        let (model, plan, system) = setup();
        // Solver that would happily install a different plan if asked.
        let solver: Box<PlanSolver> =
            Box::new(|m, p, s, _prev| GreedySharder::new(LookupCost).shard(m, p, s).ok());
        let mut c = ReshardController::new(ReshardPolicy::default(), solver);
        // Establish a baseline on a 2-GPU topology.
        let _ = c.check(&[500, 500], &model, &plan, &system);
        // The cluster grows to 4 GPUs mid-run. The cumulative counters of the
        // veterans are large, the newcomers' are zero — comparing against a
        // zeroed baseline would report a huge phantom imbalance. Re-baselining
        // must report a balanced (empty) first window instead.
        let outcome = c.check(&[600_000, 600_000, 0, 0], &model, &plan, &system);
        match outcome {
            CheckOutcome::Balanced { imbalance } => assert!((imbalance - 1.0).abs() < 1e-9),
            other => panic!("expected balanced after topology change, got {other:?}"),
        }
        assert_eq!(c.reshard_count(), 0, "no phantom reshard may fire");
        // The next window is differential against the new counters.
        let outcome = c.check(&[600_100, 600_100, 100, 100], &model, &plan, &system);
        match outcome {
            CheckOutcome::Balanced { imbalance } => assert!((imbalance - 1.0).abs() < 1e-9),
            other => panic!("expected balanced differential window, got {other:?}"),
        }
    }

    #[test]
    fn migration_cost_counts_moved_bytes() {
        let (model, plan, system) = setup();
        let profile = DatasetProfiler::profile_model(&model, 1_000, 1);
        let other = GreedySharder::new(LookupCost)
            .shard(&model, &profile, &system)
            .unwrap();
        let c = ReshardController::new(ReshardPolicy::default(), greedy_solver());
        let ns_self = c.migration_ns(&plan, &plan);
        assert_eq!(ns_self, 0, "migrating to the identical plan is free");
        if other.placements() != plan.placements() {
            assert!(c.migration_ns(&plan, &other) > 0);
        }
    }

    #[test]
    fn drift_schedule_months_clamp() {
        let s = DriftSchedule::paper_like(100);
        assert_eq!(s.month_of_iteration(0), 0);
        assert_eq!(s.month_of_iteration(99), 0);
        assert_eq!(s.month_of_iteration(100), 1);
        assert_eq!(s.month_of_iteration(1_000_000), s.drift.months());
    }
}
