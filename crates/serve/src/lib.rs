//! # recshard-serve
//!
//! A concurrent **online embedding-inference layer** with statistics-guided
//! HBM caching — the serving-side counterpart of the RecShard training
//! pipeline.
//!
//! Training-time RecShard splits each embedding table *statically*: the
//! profiled CDF decides which rows live in HBM and which in UVM, and remap
//! tables freeze that decision for the whole run. Online inference cannot
//! freeze anything — traffic drifts, capacity is shared, and queries demand
//! tail-latency guarantees — so this crate inverts the mechanism while
//! keeping the insight: every row lives in UVM-backed host memory, each GPU
//! shard's HBM becomes a **managed cache** in front of it, and the *same
//! per-table access CDFs* that drive the training MILP drive the cache's
//! admission and pinning policy.
//!
//! The pieces:
//!
//! * [`ShardedCache`] — one GPU shard's HBM cache: lock-striped interior
//!   mutability (`access(&self, ..)` is safe from any number of threads),
//!   byte-budgeted, with pluggable eviction.
//! * [`PolicyKind`] — `Lru`, `Lfu`, or `StatGuided`: LRU over an unpinned
//!   region plus profile-driven pinning of each table's rows above the
//!   [CDF knee](recshard_stats::AccessCdf::knee_rank) and admission
//!   filtering of never-profiled rows ([`StatGuide`]).
//! * [`RequestStream`] — seeded batched queries drawn from the *same*
//!   coverage/pooling/Zipf generators as training (`recshard-data`), routed
//!   to shards by a [`ShardingPlan`](recshard_sharding::ShardingPlan).
//! * [`InferenceServer`] — one worker thread per GPU shard, FIFO
//!   virtual-time queueing, fan-out/fan-in query completion, and
//!   p50/p95/p99 latency + hit-rate reporting through the P² streaming
//!   quantiles ([`StreamingCdf`](recshard_stats::StreamingCdf)).
//!
//! Runs are deterministic per seed (reports carry an event fingerprint), so
//! serving results regression-test exactly like the discrete-event trainer.
//!
//! ## Quick example
//!
//! ```
//! use recshard_data::ModelSpec;
//! use recshard_serve::{hash_placement, InferenceServer, PolicyKind, ServeConfig};
//! use recshard_sharding::SystemSpec;
//! use recshard_stats::DatasetProfiler;
//!
//! let model = ModelSpec::small(8, 1);
//! let profile = DatasetProfiler::profile_model(&model, 1_000, 1);
//! let system = SystemSpec::uniform(2, 1 << 14, 1 << 30, 1555.0, 16.0);
//! let plan = hash_placement(&model, 2);
//! let report = InferenceServer::run(
//!     &model,
//!     &plan,
//!     &profile,
//!     &system,
//!     ServeConfig {
//!         queries: 100,
//!         warmup: 20,
//!         policy: PolicyKind::StatGuided,
//!         ..ServeConfig::default()
//!     },
//! );
//! assert!(report.hit_rate > 0.0);
//! ```
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod cache;
pub mod placement;
pub mod policy;
pub mod report;
pub mod request;
pub mod server;

pub use cache::{CacheConfig, CacheStats, Lookup, ShardedCache};
pub use placement::hash_placement;
pub use policy::{PolicyKind, StatGuide, StatGuidedConfig};
pub use report::ServeReport;
pub use request::{ArrivalModel, PhaseChange, RequestStream, ShardTask};
pub use server::{InferenceServer, ServeConfig};
