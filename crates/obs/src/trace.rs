//! Structured event tracing: typed records, per-worker buffers, and a
//! deterministic merged trace exportable as JSONL or Chrome `trace_event`
//! JSON.
//!
//! Records carry integer virtual-time stamps (nanoseconds in the simulators,
//! a synthetic tick in the solvers — any monotone per-worker clock works)
//! and are merged across workers in `(ts, worker, seq)` order, so a seeded
//! run's exported trace is byte-identical across repetitions regardless of
//! thread scheduling.

/// Why a branch-and-bound node was discarded without branching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneReason {
    /// The node's relaxation bound could not beat the incumbent.
    Bound,
    /// The node's LP relaxation was infeasible.
    Infeasible,
}

impl PruneReason {
    /// Stable lowercase label used in exported traces.
    pub fn as_str(self) -> &'static str {
        match self {
            PruneReason::Bound => "bound",
            PruneReason::Infeasible => "infeasible",
        }
    }
}

/// Synthetic lane (Chrome `tid`) for the DES barrier/exchange spans.
const LANE_BARRIER: u32 = 900;
/// Synthetic lane for the all-to-all exchange spans.
const LANE_EXCHANGE: u32 = 901;
/// Synthetic lane for controller/summary instants.
const LANE_CONTROL: u32 = 902;
/// Synthetic lane for shared-rate link (contention) events.
const LANE_LINK: u32 = 903;
/// Synthetic lane for scenario phase-change events.
const LANE_SCENARIO: u32 = 904;
/// Synthetic lane for solver (simplex / B&B / bucketing) events.
const LANE_SOLVER: u32 = 1000;

/// Which kind of contended link a link event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkKind {
    /// A GPU's HBM gather channel.
    Hbm,
    /// A GPU's UVM (host-memory) gather channel.
    Uvm,
    /// A GPU's NVLink all-to-all egress.
    Nvlink,
    /// A node's inter-node fabric (NIC) ingress port.
    Fabric,
}

impl LinkKind {
    /// Stable lowercase label used in exported traces.
    pub fn as_str(self) -> &'static str {
        match self {
            LinkKind::Hbm => "hbm",
            LinkKind::Uvm => "uvm",
            LinkKind::Nvlink => "nvlink",
            LinkKind::Fabric => "fabric",
        }
    }
}

/// One typed trace event. Variants cover the instrumented layers: the
/// discrete-event trainer, the MILP solver stack, the structured solvers,
/// and the online serving layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A GPU station received one iteration's embedding work (DES).
    StationEnqueue {
        /// Station (GPU) index.
        gpu: u32,
        /// Training iteration.
        iter: u64,
        /// Backlog in front of the job at enqueue time.
        queue_ns: u64,
    },
    /// One station job from enqueue to completion (DES span).
    StationService {
        /// Station (GPU) index.
        gpu: u32,
        /// Training iteration.
        iter: u64,
        /// Virtual time service started (enqueue + queueing).
        start_ns: u64,
        /// Pure service time (HBM + UVM + overhead).
        service_ns: u64,
        /// Time spent queued behind earlier jobs.
        wait_ns: u64,
    },
    /// The all-to-all barrier: first GPU done → last GPU done (DES span).
    BarrierWait {
        /// Training iteration.
        iter: u64,
        /// How long the fastest GPU waited for the slowest.
        wait_ns: u64,
    },
    /// The all-to-all exchange crossing the interconnect (DES span).
    Exchange {
        /// Training iteration.
        iter: u64,
        /// Exchange duration.
        duration_ns: u64,
    },
    /// An iteration completed; sojourn is arrival → exchange done (DES).
    IterationDone {
        /// Training iteration.
        iter: u64,
        /// Arrival → exchange-done time.
        sojourn_ns: u64,
    },
    /// The online re-sharding controller ran an imbalance check (DES).
    ReshardCheck {
        /// Iterations completed when the check fired.
        completed: u64,
        /// Relative busy-time imbalance the controller measured (the cost
        /// signal behind the decision).
        imbalance: f64,
        /// Whether a new plan was installed.
        resharded: bool,
        /// Tables whose GPU changed under the new plan (0 when balanced).
        moved_tables: u64,
        /// Migration stall charged to every station (0 when balanced).
        migration_ns: u64,
    },
    /// The simulation drained (DES run summary instant).
    SimulationDone {
        /// Total events processed by the engine.
        events: u64,
        /// Iterations completed.
        iterations: u64,
    },
    /// One transfer completed service on a shared-rate link (DES span,
    /// contention mode only). `elapsed_ns / work_ns` is the contention
    /// stretch: 1 means the transfer never shared the link.
    LinkTransfer {
        /// Which kind of link served the transfer.
        kind: LinkKind,
        /// Device index within the kind (GPU for hbm/uvm/nvlink, node for
        /// fabric).
        link: u32,
        /// Admission sequence number on the link.
        seq: u64,
        /// Virtual time the transfer was admitted.
        start_ns: u64,
        /// Solo (uncontended) service time.
        work_ns: u64,
        /// Wall time on the link including sharing.
        elapsed_ns: u64,
        /// Tenants sharing the link at admission (including this one).
        tenants: u32,
    },
    /// Tenancy on a shared-rate link changed (DES instant, contention mode
    /// only).
    LinkTenancy {
        /// Which kind of link changed tenancy.
        kind: LinkKind,
        /// Device index within the kind.
        link: u32,
        /// In-flight transfers after the change.
        tenants: u32,
    },
    /// One LP relaxation solved by the simplex backend (solver).
    LpSolved {
        /// Branch-and-bound node index (0 = root; pure LPs only emit 0).
        node: u64,
        /// Dual-simplex pivots this solve performed.
        pivots: u64,
        /// Basis refactorisations this solve performed.
        refactorizations: u64,
        /// Relaxation objective in the model's original sense.
        objective: f64,
    },
    /// A branch-and-bound node was popped for exploration (solver).
    BnbOpen {
        /// Node index in exploration order.
        node: u64,
        /// The node's relaxation bound (minimization form).
        bound: f64,
    },
    /// A branch-and-bound node was discarded without branching (solver).
    BnbPrune {
        /// Node index in exploration order.
        node: u64,
        /// Why the node was discarded.
        reason: PruneReason,
    },
    /// A new incumbent integer solution was found (solver).
    BnbIncumbent {
        /// Node index in exploration order.
        node: u64,
        /// Incumbent objective in the model's original sense.
        objective: f64,
    },
    /// The scalable solver's preprocessor collapsed tables into buckets.
    Bucketing {
        /// Tables before bucketing.
        tables: u64,
        /// Buckets after.
        buckets: u64,
        /// `tables / buckets`.
        compression: f64,
    },
    /// The hierarchical solver solved one node's sub-problem.
    NodeSolve {
        /// Cluster node index.
        node: u32,
        /// Tables assigned to the node.
        tables: u64,
        /// GPUs on the node.
        gpus: u64,
        /// Whether the exact MILP path ran (vs the scalable solver).
        exact: bool,
    },
    /// One shard finished its slice of a query (serve span).
    QueryServed {
        /// Shard (GPU) index.
        shard: u32,
        /// Query index in the stream (warmup included).
        query: u64,
        /// Virtual time the shard started serving the slice.
        start_ns: u64,
        /// Pure service time on the shard.
        service_ns: u64,
        /// Time the slice queued behind earlier queries.
        wait_ns: u64,
        /// Measured-window lookups served from HBM (0 during warmup).
        hits: u64,
        /// Measured-window lookups missed and admitted.
        misses: u64,
        /// Measured-window lookups missed and bypassed.
        bypasses: u64,
    },
    /// A measured query's end-to-end latency after fan-in (serve).
    QueryLatency {
        /// Query index in the stream.
        query: u64,
        /// Arrival → slowest-shard-done latency.
        latency_ns: u64,
    },
    /// The driving workload scenario entered a new phase: a rate-curve
    /// regime boundary was crossed and/or distribution shifts applied
    /// (DES and serve instant).
    ScenarioPhase {
        /// Phase index after the change (0 is never emitted — runs start
        /// in phase 0).
        phase: u32,
        /// Composed arrival-rate multiplier at the boundary.
        rate_multiplier: f64,
        /// Total distribution shifts applied so far.
        shifts_applied: u64,
    },
    /// End-state cache counters of one shard (serve, warmup included).
    CacheShard {
        /// Shard (GPU) index.
        shard: u32,
        /// Lifetime cache hits.
        hits: u64,
        /// Lifetime misses admitted.
        misses: u64,
        /// Lifetime misses bypassed.
        bypasses: u64,
        /// Lifetime evictions.
        evictions: u64,
        /// Bytes resident at the end of the run.
        used_bytes: u64,
        /// Bytes pinned by the stat-guided policy.
        pinned_bytes: u64,
    },
}

/// Formats a float exactly like the committed bench artifacts do, so traces
/// containing floats stay byte-stable across runs.
fn fmt_f64(x: f64) -> String {
    format!("{x:.9e}")
}

impl TraceEvent {
    /// Stable snake_case event name used in both export formats.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::StationEnqueue { .. } => "station_enqueue",
            TraceEvent::StationService { .. } => "station_service",
            TraceEvent::BarrierWait { .. } => "barrier_wait",
            TraceEvent::Exchange { .. } => "exchange",
            TraceEvent::IterationDone { .. } => "iteration_done",
            TraceEvent::ReshardCheck { .. } => "reshard_check",
            TraceEvent::SimulationDone { .. } => "simulation_done",
            TraceEvent::LinkTransfer { .. } => "link_transfer",
            TraceEvent::LinkTenancy { .. } => "link_tenancy",
            TraceEvent::LpSolved { .. } => "lp_solved",
            TraceEvent::BnbOpen { .. } => "bnb_open",
            TraceEvent::BnbPrune { .. } => "bnb_prune",
            TraceEvent::BnbIncumbent { .. } => "bnb_incumbent",
            TraceEvent::Bucketing { .. } => "bucketing",
            TraceEvent::NodeSolve { .. } => "node_solve",
            TraceEvent::QueryServed { .. } => "query_served",
            TraceEvent::QueryLatency { .. } => "query_latency",
            TraceEvent::ScenarioPhase { .. } => "scenario_phase",
            TraceEvent::CacheShard { .. } => "cache_shard",
        }
    }

    /// Display lane of the event: per-GPU/shard events use the device index,
    /// synthetic subsystems get fixed lanes. Becomes the Chrome `tid`.
    pub fn lane(&self) -> u32 {
        match *self {
            TraceEvent::StationEnqueue { gpu, .. } | TraceEvent::StationService { gpu, .. } => gpu,
            TraceEvent::BarrierWait { .. } => LANE_BARRIER,
            TraceEvent::Exchange { .. } => LANE_EXCHANGE,
            TraceEvent::IterationDone { .. }
            | TraceEvent::ReshardCheck { .. }
            | TraceEvent::SimulationDone { .. }
            | TraceEvent::QueryLatency { .. } => LANE_CONTROL,
            TraceEvent::LinkTransfer { .. } | TraceEvent::LinkTenancy { .. } => LANE_LINK,
            TraceEvent::ScenarioPhase { .. } => LANE_SCENARIO,
            TraceEvent::LpSolved { .. }
            | TraceEvent::BnbOpen { .. }
            | TraceEvent::BnbPrune { .. }
            | TraceEvent::BnbIncumbent { .. }
            | TraceEvent::Bucketing { .. }
            | TraceEvent::NodeSolve { .. } => LANE_SOLVER,
            TraceEvent::QueryServed { shard, .. } | TraceEvent::CacheShard { shard, .. } => shard,
        }
    }

    /// Span extent `(start_ns, duration_ns)` for events that model an
    /// interval; `None` renders as a Chrome instant. `ts_ns` is the record's
    /// timestamp, used by spans anchored at their record time.
    pub fn span(&self, ts_ns: u64) -> Option<(u64, u64)> {
        match *self {
            TraceEvent::StationService {
                start_ns,
                service_ns,
                ..
            } => Some((start_ns, service_ns)),
            TraceEvent::BarrierWait { wait_ns, .. } => Some((ts_ns, wait_ns)),
            TraceEvent::Exchange { duration_ns, .. } => Some((ts_ns, duration_ns)),
            TraceEvent::LinkTransfer {
                start_ns,
                elapsed_ns,
                ..
            } => Some((start_ns, elapsed_ns)),
            TraceEvent::QueryServed {
                start_ns,
                service_ns,
                ..
            } => Some((start_ns, service_ns)),
            _ => None,
        }
    }

    /// The event payload as a canonical JSON object (fixed key order,
    /// floats in `{:.9e}`).
    pub fn args_json(&self) -> String {
        match *self {
            TraceEvent::StationEnqueue {
                gpu,
                iter,
                queue_ns,
            } => {
                format!("{{\"gpu\":{gpu},\"iter\":{iter},\"queue_ns\":{queue_ns}}}")
            }
            TraceEvent::StationService {
                gpu,
                iter,
                start_ns,
                service_ns,
                wait_ns,
            } => format!(
                "{{\"gpu\":{gpu},\"iter\":{iter},\"start_ns\":{start_ns},\
                 \"service_ns\":{service_ns},\"wait_ns\":{wait_ns}}}"
            ),
            TraceEvent::BarrierWait { iter, wait_ns } => {
                format!("{{\"iter\":{iter},\"wait_ns\":{wait_ns}}}")
            }
            TraceEvent::Exchange { iter, duration_ns } => {
                format!("{{\"iter\":{iter},\"duration_ns\":{duration_ns}}}")
            }
            TraceEvent::IterationDone { iter, sojourn_ns } => {
                format!("{{\"iter\":{iter},\"sojourn_ns\":{sojourn_ns}}}")
            }
            TraceEvent::ReshardCheck {
                completed,
                imbalance,
                resharded,
                moved_tables,
                migration_ns,
            } => format!(
                "{{\"completed\":{completed},\"imbalance\":{},\"resharded\":{resharded},\
                 \"moved_tables\":{moved_tables},\"migration_ns\":{migration_ns}}}",
                fmt_f64(imbalance)
            ),
            TraceEvent::SimulationDone { events, iterations } => {
                format!("{{\"events\":{events},\"iterations\":{iterations}}}")
            }
            TraceEvent::LinkTransfer {
                kind,
                link,
                seq,
                start_ns,
                work_ns,
                elapsed_ns,
                tenants,
            } => format!(
                "{{\"kind\":\"{}\",\"link\":{link},\"seq\":{seq},\"start_ns\":{start_ns},\
                 \"work_ns\":{work_ns},\"elapsed_ns\":{elapsed_ns},\"tenants\":{tenants}}}",
                kind.as_str()
            ),
            TraceEvent::LinkTenancy {
                kind,
                link,
                tenants,
            } => format!(
                "{{\"kind\":\"{}\",\"link\":{link},\"tenants\":{tenants}}}",
                kind.as_str()
            ),
            TraceEvent::LpSolved {
                node,
                pivots,
                refactorizations,
                objective,
            } => format!(
                "{{\"node\":{node},\"pivots\":{pivots},\
                 \"refactorizations\":{refactorizations},\"objective\":{}}}",
                fmt_f64(objective)
            ),
            TraceEvent::BnbOpen { node, bound } => {
                format!("{{\"node\":{node},\"bound\":{}}}", fmt_f64(bound))
            }
            TraceEvent::BnbPrune { node, reason } => {
                format!("{{\"node\":{node},\"reason\":\"{}\"}}", reason.as_str())
            }
            TraceEvent::BnbIncumbent { node, objective } => {
                format!("{{\"node\":{node},\"objective\":{}}}", fmt_f64(objective))
            }
            TraceEvent::Bucketing {
                tables,
                buckets,
                compression,
            } => format!(
                "{{\"tables\":{tables},\"buckets\":{buckets},\"compression\":{}}}",
                fmt_f64(compression)
            ),
            TraceEvent::NodeSolve {
                node,
                tables,
                gpus,
                exact,
            } => {
                format!("{{\"node\":{node},\"tables\":{tables},\"gpus\":{gpus},\"exact\":{exact}}}")
            }
            TraceEvent::QueryServed {
                shard,
                query,
                start_ns,
                service_ns,
                wait_ns,
                hits,
                misses,
                bypasses,
            } => format!(
                "{{\"shard\":{shard},\"query\":{query},\"start_ns\":{start_ns},\
                 \"service_ns\":{service_ns},\"wait_ns\":{wait_ns},\"hits\":{hits},\
                 \"misses\":{misses},\"bypasses\":{bypasses}}}"
            ),
            TraceEvent::QueryLatency { query, latency_ns } => {
                format!("{{\"query\":{query},\"latency_ns\":{latency_ns}}}")
            }
            TraceEvent::ScenarioPhase {
                phase,
                rate_multiplier,
                shifts_applied,
            } => format!(
                "{{\"phase\":{phase},\"rate_multiplier\":{},\"shifts_applied\":{shifts_applied}}}",
                fmt_f64(rate_multiplier)
            ),
            TraceEvent::CacheShard {
                shard,
                hits,
                misses,
                bypasses,
                evictions,
                used_bytes,
                pinned_bytes,
            } => format!(
                "{{\"shard\":{shard},\"hits\":{hits},\"misses\":{misses},\
                 \"bypasses\":{bypasses},\"evictions\":{evictions},\
                 \"used_bytes\":{used_bytes},\"pinned_bytes\":{pinned_bytes}}}"
            ),
        }
    }
}

/// One buffered trace record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Virtual timestamp (nanoseconds in the simulators, a synthetic tick in
    /// the solvers).
    pub ts_ns: u64,
    /// Worker that recorded the event (0 for single-threaded layers).
    pub worker: u32,
    /// Per-worker emission sequence number (merge tie-break).
    pub seq: u64,
    /// The typed payload.
    pub event: TraceEvent,
}

/// A per-worker append-only record buffer. Workers record into private
/// buffers (no synchronisation on the hot path); [`Trace::merge`] produces
/// the deterministic global order afterwards.
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    worker: u32,
    records: Vec<TraceRecord>,
}

impl TraceBuffer {
    /// Creates an empty buffer for `worker`.
    pub fn new(worker: u32) -> Self {
        Self {
            worker,
            records: Vec::new(),
        }
    }

    /// Appends one event at virtual time `ts_ns`.
    pub fn record(&mut self, ts_ns: u64, event: TraceEvent) {
        let seq = self.records.len() as u64;
        self.records.push(TraceRecord {
            ts_ns,
            worker: self.worker,
            seq,
            event,
        });
    }

    /// The buffered records, emission order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Records buffered so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// A merged, deterministically ordered trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

impl Trace {
    /// Merges per-worker buffers into `(ts, worker, seq)` order. The sort
    /// key is total over records of distinct workers, so the merged order is
    /// independent of buffer order and of any thread scheduling that
    /// produced the buffers.
    pub fn merge(buffers: impl IntoIterator<Item = TraceBuffer>) -> Self {
        let mut records: Vec<TraceRecord> = buffers.into_iter().flat_map(|b| b.records).collect();
        records.sort_by_key(|r| (r.ts_ns, r.worker, r.seq));
        Self { records }
    }

    /// The merged records.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// One canonical JSON object per record, newline-terminated — the
    /// grep/jq-friendly export.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&format!(
                "{{\"ts_ns\":{},\"worker\":{},\"seq\":{},\"name\":\"{}\",\"args\":{}}}\n",
                r.ts_ns,
                r.worker,
                r.seq,
                r.event.name(),
                r.event.args_json()
            ));
        }
        out
    }

    /// Chrome `trace_event` JSON (the "JSON Array Format"): load the file in
    /// `about://tracing` or Perfetto. Spans render as complete (`ph:"X"`)
    /// events, everything else as thread-scoped instants; lanes become
    /// threads with stable names, timestamps are microseconds.
    pub fn to_chrome(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        let mut first = true;
        let mut push = |line: String, out: &mut String| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&line);
        };

        // Thread-name metadata for every lane present, ascending.
        let mut lanes: Vec<u32> = self.records.iter().map(|r| r.event.lane()).collect();
        lanes.sort_unstable();
        lanes.dedup();
        for lane in lanes {
            let name = match lane {
                LANE_BARRIER => "barrier".to_string(),
                LANE_EXCHANGE => "exchange".to_string(),
                LANE_CONTROL => "control".to_string(),
                LANE_LINK => "links".to_string(),
                LANE_SCENARIO => "scenario".to_string(),
                LANE_SOLVER => "solver".to_string(),
                gpu => format!("gpu {gpu}"),
            };
            push(
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{lane},\
                     \"args\":{{\"name\":\"{name}\"}}}}"
                ),
                &mut out,
            );
        }

        let us = |ns: u64| format!("{:.3}", ns as f64 / 1e3);
        for r in &self.records {
            let line = match r.event.span(r.ts_ns) {
                Some((start_ns, dur_ns)) => format!(
                    "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{},\
                     \"dur\":{},\"args\":{}}}",
                    r.event.name(),
                    r.event.lane(),
                    us(start_ns),
                    us(dur_ns),
                    r.event.args_json()
                ),
                None => format!(
                    "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{},\
                     \"ts\":{},\"args\":{}}}",
                    r.event.name(),
                    r.event.lane(),
                    us(r.ts_ns),
                    r.event.args_json()
                ),
            };
            push(line, &mut out);
        }
        out.push_str("\n]}\n");
        out
    }

    /// Order-sensitive FNV-1a hash over the JSONL export.
    pub fn fingerprint(&self) -> u64 {
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        for byte in self.to_jsonl().bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_buffers() -> Vec<TraceBuffer> {
        let mut a = TraceBuffer::new(0);
        a.record(
            10,
            TraceEvent::StationEnqueue {
                gpu: 0,
                iter: 0,
                queue_ns: 0,
            },
        );
        a.record(
            10,
            TraceEvent::StationService {
                gpu: 0,
                iter: 0,
                start_ns: 10,
                service_ns: 40,
                wait_ns: 0,
            },
        );
        let mut b = TraceBuffer::new(1);
        b.record(
            5,
            TraceEvent::QueryServed {
                shard: 1,
                query: 0,
                start_ns: 5,
                service_ns: 7,
                wait_ns: 0,
                hits: 2,
                misses: 1,
                bypasses: 0,
            },
        );
        b.record(
            10,
            TraceEvent::IterationDone {
                iter: 0,
                sojourn_ns: 50,
            },
        );
        vec![a, b]
    }

    #[test]
    fn merge_orders_by_time_worker_seq_regardless_of_buffer_order() {
        let fwd = Trace::merge(sample_buffers());
        let mut rev = sample_buffers();
        rev.reverse();
        let bwd = Trace::merge(rev);
        assert_eq!(fwd, bwd);
        assert_eq!(fwd.to_jsonl(), bwd.to_jsonl());
        let keys: Vec<_> = fwd
            .records()
            .iter()
            .map(|r| (r.ts_ns, r.worker, r.seq))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "merged trace must be sorted");
        assert_eq!(fwd.len(), 4);
    }

    #[test]
    fn jsonl_is_one_valid_object_per_line() {
        let trace = Trace::merge(sample_buffers());
        let jsonl = trace.to_jsonl();
        assert_eq!(jsonl.lines().count(), trace.len());
        for line in jsonl.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert!(line.contains("\"name\":"));
            assert_eq!(
                line.matches('{').count(),
                line.matches('}').count(),
                "unbalanced braces in {line}"
            );
        }
    }

    #[test]
    fn chrome_export_has_spans_instants_and_lane_names() {
        let trace = Trace::merge(sample_buffers());
        let chrome = trace.to_chrome();
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.trim_end().ends_with("]}"));
        assert!(chrome.contains("\"ph\":\"X\""), "spans present");
        assert!(chrome.contains("\"ph\":\"i\""), "instants present");
        assert!(chrome.contains("\"ph\":\"M\""), "lane metadata present");
        assert!(chrome.contains("gpu 0"));
        assert_eq!(chrome.matches('{').count(), chrome.matches('}').count());
    }

    #[test]
    fn fingerprint_is_order_sensitive() {
        let trace = Trace::merge(sample_buffers());
        let mut shuffled = sample_buffers();
        // Swap the two workers' identities: same events, different order.
        shuffled.swap(0, 1);
        let mut relabeled = Vec::new();
        for (w, mut buf) in shuffled.into_iter().enumerate() {
            buf.worker = w as u32;
            for r in &mut buf.records {
                r.worker = w as u32;
            }
            relabeled.push(buf);
        }
        let other = Trace::merge(relabeled);
        assert_ne!(trace.fingerprint(), other.fingerprint());
    }
}
