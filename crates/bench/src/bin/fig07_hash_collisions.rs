//! Figure 7: pre- vs post-hash value frequency distributions and the
//! resulting embedding-table under-utilisation for one skewed feature.

#![allow(clippy::print_stdout)]
use recshard::hash_analysis::pre_post_hash_distribution;
use recshard_data::hash::expected_usage;

fn main() {
    // One production-like skewed feature: 20k distinct raw values hashed into
    // a table slightly larger than the raw space (the Figure 7 setting where
    // the red dotted hash-size line sits to the right of the raw cardinality).
    let cardinality = 20_000u64;
    let hash_size = 24_000u64;
    let d = pre_post_hash_distribution(cardinality, hash_size, 1.05, 400_000, 11);

    println!("# Figure 7: pre- vs post-hash distribution (cardinality {cardinality}, hash size {hash_size})");
    println!("| rank bucket | pre-hash count | post-hash count |");
    println!("|-------------|----------------|-----------------|");
    for rank in [0usize, 9, 99, 999, 4_999, 9_999] {
        let pre = d.pre_hash_counts.get(rank).copied().unwrap_or(0);
        let post = d.post_hash_counts.get(rank).copied().unwrap_or(0);
        println!("| {} | {} | {} |", rank + 1, pre, post);
    }
    let observed_values = d.pre_hash_counts.len();
    let occupied_rows = d.post_hash_counts.len();
    let data_sparsity = 1.0 - observed_values as f64 / hash_size as f64;
    let collision_compression = (observed_values - occupied_rows) as f64 / hash_size as f64;
    println!();
    println!("Distinct raw values observed: {observed_values}");
    println!("Embedding rows occupied:      {occupied_rows}");
    println!(
        "Unused table fraction:        {:.1}% (= {:.1}% training-data sparsity + {:.1}% hash-collision compression)",
        d.unused_fraction * 100.0,
        data_sparsity * 100.0,
        collision_compression * 100.0
    );
    println!(
        "(analytic expectation of occupied fraction: {:.1}%)",
        expected_usage(observed_values as u64, hash_size) * 100.0
    );
    println!();
    println!(
        "As in Figure 7, the post-hash distribution terminates earlier than the pre-hash one \
         (collisions compress the space) and a sizable slice of the table is never touched — \
         space RecShard relegates to UVM at zero performance cost."
    );
}
