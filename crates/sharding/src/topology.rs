//! Multi-host cluster topology and the table→node assignment stage.
//!
//! Production DLRM deployments shard thousands of embedding tables across
//! *nodes* (hosts) of several GPUs each, not across one flat GPU pool. The
//! two-level RecShard plan first assigns tables to nodes — balancing the
//! pooled-embedding bytes every node must ship through the (much slower)
//! inter-node all-to-all — and then solves an independent per-node placement
//! over that node's GPUs. [`NodeTopology`] describes the grid and
//! [`NodeAssigner`] implements the first level; the per-node second level
//! lives in the `recshard` crate (it needs the cost-model solvers).
//!
//! Global GPU indices are node-major: GPU `g` lives on node
//! `g / gpus_per_node`, so a two-level plan flattens into an ordinary
//! [`ShardingPlan`](crate::ShardingPlan) with no index translation.

use crate::error::ShardingError;
use crate::system::SystemSpec;
use recshard_data::ModelSpec;
use recshard_stats::DatasetProfile;
use serde::{Deserialize, Serialize};

/// The node grid of a training cluster: `num_nodes` hosts with
/// `gpus_per_node` GPUs each, global GPU ids node-major.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NodeTopology {
    /// Number of nodes (hosts).
    pub num_nodes: usize,
    /// GPUs per node.
    pub gpus_per_node: usize,
}

impl NodeTopology {
    /// Builds a topology.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(num_nodes: usize, gpus_per_node: usize) -> Self {
        assert!(num_nodes > 0, "topology needs at least one node");
        assert!(
            gpus_per_node > 0,
            "topology needs at least one GPU per node"
        );
        Self {
            num_nodes,
            gpus_per_node,
        }
    }

    /// A single-node topology covering `num_gpus` GPUs (the degenerate case
    /// equivalent to a flat plan).
    pub fn single(num_gpus: usize) -> Self {
        Self::new(1, num_gpus)
    }

    /// Total GPUs in the cluster.
    pub fn num_gpus(&self) -> usize {
        self.num_nodes * self.gpus_per_node
    }

    /// The node owning global GPU `gpu`.
    ///
    /// # Panics
    ///
    /// Panics if `gpu` is out of range.
    pub fn node_of_gpu(&self, gpu: usize) -> usize {
        assert!(gpu < self.num_gpus(), "GPU {gpu} outside the topology");
        gpu / self.gpus_per_node
    }

    /// Global GPU ids of node `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn gpus_of_node(&self, node: usize) -> std::ops::Range<usize> {
        assert!(node < self.num_nodes, "node {node} outside the topology");
        node * self.gpus_per_node..(node + 1) * self.gpus_per_node
    }

    /// Fraction of a GPU's all-to-all peers that live on *other* nodes — the
    /// share of exchange traffic crossing the slow inter-node fabric.
    pub fn remote_peer_fraction(&self) -> f64 {
        let g = self.num_gpus();
        if g <= 1 {
            0.0
        } else {
            (g - self.gpus_per_node) as f64 / (g - 1) as f64
        }
    }
}

/// Link-rate parameters of the exchange fabric, shared by every layer that
/// prices a cross-GPU or cross-node byte.
///
/// Three consumers read this one description so their assumptions cannot
/// drift apart:
///
/// * the DES (`recshard-des`) instantiates one shared-rate link per GPU
///   NVLink egress and one per node fabric port and lets in-flight
///   transfers contend for them;
/// * the analytical estimator (`recshard-memsim`) divides aggregate phase
///   bytes by the same rates (its no-queueing lower bound);
/// * the serving simulator (`recshard-serve`) derives its per-hop
///   `internode_hop_ns` charge from the same fabric rate and latency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FabricSpec {
    /// Per-GPU NVLink egress bandwidth, GB/s. NVLink is switched, so each
    /// GPU's egress is an independent link rather than a shared bus.
    pub nvlink_gbps: f64,
    /// Per-node inter-node port (NIC) bandwidth, GB/s. All flows *into* a
    /// node share this link — the incast bottleneck.
    pub fabric_gbps: f64,
    /// Base all-to-all software/launch latency, µs.
    pub base_latency_us: f64,
}

impl FabricSpec {
    /// Builds a fabric description.
    ///
    /// # Panics
    ///
    /// Panics if a bandwidth is not positive and finite or the latency is
    /// negative or non-finite.
    pub fn new(nvlink_gbps: f64, fabric_gbps: f64, base_latency_us: f64) -> Self {
        assert!(
            nvlink_gbps.is_finite() && nvlink_gbps > 0.0,
            "nvlink_gbps must be positive and finite"
        );
        assert!(
            fabric_gbps.is_finite() && fabric_gbps > 0.0,
            "fabric_gbps must be positive and finite"
        );
        assert!(
            base_latency_us.is_finite() && base_latency_us >= 0.0,
            "base_latency_us must be non-negative and finite"
        );
        Self {
            nvlink_gbps,
            fabric_gbps,
            base_latency_us,
        }
    }

    /// An HGX-class node: 150 GB/s effective NVLink all-to-all egress per
    /// GPU, a 25 GB/s (200 Gb/s RoCE) fabric port per node, 20 µs base
    /// latency — the same figures the DES has always defaulted to.
    pub fn hgx() -> Self {
        Self::new(150.0, 25.0, 20.0)
    }

    /// Solo (uncontended) seconds to move `bytes` over one NVLink egress.
    pub fn nvlink_secs(&self, bytes: f64) -> f64 {
        bytes / (self.nvlink_gbps * 1e9)
    }

    /// Solo (uncontended) seconds to move `bytes` through one node's fabric
    /// port.
    pub fn fabric_secs(&self, bytes: f64) -> f64 {
        bytes / (self.fabric_gbps * 1e9)
    }

    /// Nanoseconds a single `bytes`-sized remote hop costs (base latency
    /// plus solo fabric service) — the per-shard remote charge the serving
    /// simulator applies.
    pub fn hop_ns(&self, bytes: f64) -> u64 {
        let secs = self.base_latency_us * 1e-6 + self.fabric_secs(bytes);
        (secs * 1e9).round() as u64
    }
}

/// The first level of a two-level plan: one owning node per table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeAssignment {
    topology: NodeTopology,
    node_of_table: Vec<usize>,
}

impl NodeAssignment {
    /// The topology the assignment targets.
    pub fn topology(&self) -> NodeTopology {
        self.topology
    }

    /// Owning node per table (dense feature order).
    pub fn node_of_table(&self) -> &[usize] {
        &self.node_of_table
    }

    /// Tables owned by `node`, in dense feature order.
    pub fn tables_on_node(&self, node: usize) -> Vec<usize> {
        self.node_of_table
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n == node)
            .map(|(t, _)| t)
            .collect()
    }
}

/// Greedy table→node assigner minimising the peak per-node all-to-all send
/// volume.
///
/// Every GPU needs every table's pooled embedding each iteration, so a table
/// placed on node `n` makes `n` ship its pooled output to all *other* nodes:
/// the inter-node bytes a node sends scale with the sum of expected pooled
/// output bytes of the tables it owns. Minimising the maximum per-node send
/// volume (classic LPT makespan greedy, capacity-aware) therefore minimises
/// the bottleneck node's contribution to the inter-node all-to-all.
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeAssigner;

impl NodeAssigner {
    /// Assigns tables to nodes.
    ///
    /// `traffic` per table is `coverage × row_bytes` — the expected pooled
    /// output bytes per sample. Pooling does *not* appear: the embedding
    /// lookups are pooled (summed) on the owning GPU before the all-to-all,
    /// so each table ships exactly one `row_bytes`-wide vector per covered
    /// sample regardless of its pooling factor (the same quantity
    /// `recshard-memsim`'s `internode_send_bytes_per_node` charges). Total
    /// table bytes must fit in each node's aggregate HBM+DRAM capacity.
    ///
    /// # Errors
    ///
    /// [`ShardingError::ProfileMismatch`] when the profile does not cover the
    /// model, [`ShardingError::SystemTooSmall`] when the model cannot fit the
    /// cluster, [`ShardingError::CapacityExceeded`] when some table fits on
    /// no node.
    pub fn assign(
        &self,
        model: &ModelSpec,
        profile: &DatasetProfile,
        system: &SystemSpec,
        topology: NodeTopology,
    ) -> Result<NodeAssignment, ShardingError> {
        assert_eq!(
            topology.num_gpus(),
            system.num_gpus(),
            "topology covers {} GPUs but the system has {}",
            topology.num_gpus(),
            system.num_gpus()
        );
        if profile.num_features() != model.num_features() {
            return Err(ShardingError::ProfileMismatch(format!(
                "profile covers {} features but the model has {}",
                profile.num_features(),
                model.num_features()
            )));
        }
        if model.total_bytes() > system.total_capacity() {
            return Err(ShardingError::SystemTooSmall {
                required_bytes: model.total_bytes(),
                available_bytes: system.total_capacity(),
            });
        }

        // Descending expected pooled-output bytes, deterministic tie-break.
        let mut order: Vec<(usize, f64)> = model
            .features()
            .iter()
            .zip(profile.profiles())
            .map(|(spec, prof)| {
                let traffic = prof.coverage * spec.row_bytes() as f64;
                (spec.id.index(), traffic)
            })
            .collect();
        order.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });

        // Per-node capacity is the aggregate over that node's GPUs — on a
        // heterogeneous cluster different nodes can carry different device
        // mixes, so each node's budget is summed from its own class mix.
        let mut node_traffic = vec![0.0f64; topology.num_nodes];
        let mut node_free: Vec<u64> = (0..topology.num_nodes)
            .map(|n| {
                topology
                    .gpus_of_node(n)
                    .map(|g| system.hbm_capacity(g) + system.dram_capacity(g))
                    .sum()
            })
            .collect();
        let mut node_of_table = vec![0usize; model.num_features()];

        for (idx, traffic) in order {
            let bytes = model.features()[idx].table_bytes();
            let target = (0..topology.num_nodes)
                .filter(|&n| node_free[n] >= bytes)
                .min_by(|&a, &b| {
                    node_traffic[a]
                        .partial_cmp(&node_traffic[b])
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                });
            let Some(n) = target else {
                return Err(ShardingError::CapacityExceeded {
                    table: model.features()[idx].id,
                    overflow_bytes: bytes,
                });
            };
            node_free[n] -= bytes;
            node_traffic[n] += traffic;
            node_of_table[idx] = n;
        }

        Ok(NodeAssignment {
            topology,
            node_of_table,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recshard_stats::DatasetProfiler;

    #[test]
    fn topology_geometry() {
        let t = NodeTopology::new(4, 4);
        assert_eq!(t.num_gpus(), 16);
        assert_eq!(t.node_of_gpu(0), 0);
        assert_eq!(t.node_of_gpu(5), 1);
        assert_eq!(t.node_of_gpu(15), 3);
        assert_eq!(t.gpus_of_node(2), 8..12);
        assert!((t.remote_peer_fraction() - 12.0 / 15.0).abs() < 1e-12);
        assert_eq!(NodeTopology::single(8).remote_peer_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "outside the topology")]
    fn out_of_range_gpu_rejected() {
        let _ = NodeTopology::new(2, 2).node_of_gpu(4);
    }

    #[test]
    fn fabric_prices_links_consistently() {
        let fabric = FabricSpec::hgx();
        // 150 MB over one 150 GB/s NVLink egress: 1 ms.
        assert!((fabric.nvlink_secs(150e6) - 1e-3).abs() < 1e-12);
        // 25 MB through one 25 GB/s fabric port: 1 ms.
        assert!((fabric.fabric_secs(25e6) - 1e-3).abs() < 1e-12);
        // Hop = 20 µs latency + 40 ns of wire time for 1 KiB.
        assert_eq!(fabric.hop_ns(1024.0), 20_000 + 41);
    }

    #[test]
    #[should_panic(expected = "fabric_gbps must be positive")]
    fn zero_fabric_bandwidth_rejected() {
        let _ = FabricSpec::new(150.0, 0.0, 20.0);
    }

    #[test]
    fn assignment_covers_every_table_within_capacity() {
        let model = ModelSpec::small(12, 9);
        let profile = DatasetProfiler::profile_model(&model, 500, 3);
        let topology = NodeTopology::new(2, 2);
        let system = SystemSpec::uniform(
            4,
            model.total_bytes() / 8,
            model.total_bytes(),
            1555.0,
            16.0,
        );
        let assignment = NodeAssigner
            .assign(&model, &profile, &system, topology)
            .unwrap();
        assert_eq!(assignment.node_of_table().len(), 12);
        let mut counted = 0;
        for node in 0..topology.num_nodes {
            let tables = assignment.tables_on_node(node);
            counted += tables.len();
            let bytes: u64 = tables
                .iter()
                .map(|&t| model.features()[t].table_bytes())
                .sum();
            assert!(
                bytes
                    <= (system.hbm_capacity(0) + system.dram_capacity(0))
                        * topology.gpus_per_node as u64
            );
        }
        assert_eq!(counted, 12);
    }

    #[test]
    fn assignment_balances_traffic() {
        let model = ModelSpec::small(16, 21);
        let profile = DatasetProfiler::profile_model(&model, 1_000, 7);
        let topology = NodeTopology::new(4, 1);
        let system = SystemSpec::uniform(4, model.total_bytes(), model.total_bytes(), 1555.0, 16.0);
        let assignment = NodeAssigner
            .assign(&model, &profile, &system, topology)
            .unwrap();
        // Every node receives at least one table on this ample system.
        for node in 0..4 {
            assert!(
                !assignment.tables_on_node(node).is_empty(),
                "node {node} got no tables"
            );
        }
    }

    #[test]
    fn impossible_model_rejected() {
        let model = ModelSpec::small(4, 2);
        let profile = DatasetProfiler::profile_model(&model, 100, 1);
        let system = SystemSpec::uniform(2, 8, 8, 1555.0, 16.0);
        assert!(matches!(
            NodeAssigner.assign(&model, &profile, &system, NodeTopology::new(2, 1)),
            Err(ShardingError::SystemTooSmall { .. })
        ));
    }
}
