//! Criterion bench for the Step I/II baseline sharders (Section 5): the cost
//! of producing a greedy plan for the full 397-table model under each cost
//! function.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use recshard_bench::ExperimentConfig;
use recshard_data::RmKind;
use recshard_sharding::{GreedySharder, LookupCost, SizeCost, SizeLookupCost};
use recshard_stats::DatasetProfiler;

fn baselines(c: &mut Criterion) {
    let mut cfg = ExperimentConfig::fast();
    cfg.profile_samples = 1_500;
    let model = cfg.model(RmKind::Rm2);
    let system = cfg.system();
    let profile = DatasetProfiler::profile_model(&model, cfg.profile_samples, cfg.seed);

    let mut group = c.benchmark_group("baseline_sharders");
    group.sample_size(20);
    group.bench_with_input(BenchmarkId::new("greedy", "size"), &(), |b, _| {
        b.iter(|| {
            GreedySharder::new(SizeCost)
                .shard(&model, &profile, &system)
                .expect("plan")
        });
    });
    group.bench_with_input(BenchmarkId::new("greedy", "lookup"), &(), |b, _| {
        b.iter(|| {
            GreedySharder::new(LookupCost)
                .shard(&model, &profile, &system)
                .expect("plan")
        });
    });
    group.bench_with_input(BenchmarkId::new("greedy", "size-lookup"), &(), |b, _| {
        b.iter(|| {
            GreedySharder::new(SizeLookupCost)
                .shard(&model, &profile, &system)
                .expect("plan")
        });
    });
    group.finish();
}

criterion_group!(benches, baselines);
criterion_main!(benches);
