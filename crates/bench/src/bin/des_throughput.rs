//! Discrete-event cluster throughput comparison: RecShard vs the greedy
//! baselines under identical open-loop event streams.
//!
//! This is the dynamic-systems counterpart of Table 3: instead of charging
//! each plan a closed-form per-iteration cost, every strategy's plan is
//! replayed through `recshard-des` — per-GPU FIFO stations, an all-to-all
//! barrier, and batches arriving at a fixed rate the cluster does not
//! control. The arrival interval is calibrated to give the RecShard plan a
//! small amount of headroom; a baseline whose slowest GPU cannot keep that
//! pace builds an unbounded queue and its p99 sojourn time diverges — the
//! sustained-throughput argument of the paper, visible only in a model with
//! queueing.
//!
//! The workload is a deliberately skewed Zipf feature universe (exponents
//! 1.05–1.6) on a system where only ~1/3 of the embedding bytes fit in HBM,
//! so *which* rows a strategy keeps in HBM decides everything.
//!
//! Environment overrides: `RECSHARD_GPUS` (default 4, min 4),
//! `RECSHARD_DES_ITERS` (default 10,000, min 10,000), `RECSHARD_SIM_BATCH`
//! (default 32), `RECSHARD_SEED`.

#![allow(clippy::print_stdout)]
use recshard_bench::report::{determinism_report, env_u64, RunReport};
use recshard_bench::{print_row, skewed_model, Strategy};
use recshard_des::{ArrivalProcess, ClusterConfig, ClusterSimulator, RunSummary};
use recshard_sharding::{ShardingPlan, SystemSpec};
use recshard_stats::DatasetProfiler;

fn main() {
    let gpus = env_u64("RECSHARD_GPUS", 4).max(4) as usize;
    let iterations = env_u64("RECSHARD_DES_ITERS", 10_000).max(10_000);
    let batch = env_u64("RECSHARD_SIM_BATCH", 32).max(1) as usize;
    let seed = env_u64("RECSHARD_SEED", 0xA5F0);

    let model = skewed_model(64);
    // Only ~1/3 of the embedding bytes fit in HBM: hot-row placement decides
    // how much traffic crosses the 16 GB/s UVM link.
    let system = SystemSpec::uniform(
        gpus,
        model.total_bytes() / (3 * gpus as u64),
        model.total_bytes(),
        1555.0,
        16.0,
    );
    let profile = DatasetProfiler::profile_model(&model, 4_000, seed);

    let base_config = ClusterConfig {
        batch_size: batch,
        iterations,
        seed,
        // Placeholder pace (~17 min between batches — effectively unloaded);
        // every run below overrides `arrival` with the calibrated interval.
        arrival: ArrivalProcess::FixedRate { interval_ms: 1e6 },
        kernel_overhead_us_per_table: 8.0,
        // Trace a 32-sample sub-batch, report at the model's 512-sample batch
        // (the same sub-sampling trick the trace simulator uses): memory
        // traffic, not launch overhead, decides the comparison.
        scale_to_batch: Some(model.batch_size()),
        ..ClusterConfig::default()
    };

    // Solve every strategy's plan exactly once; RecShard's structured solve
    // is the expensive phase and each plan is reused across the calibration,
    // comparison and determinism runs below.
    let strategies = [
        Strategy::RecShard,
        Strategy::SizeBased,
        Strategy::LookupBased,
        Strategy::SizeLookupBased,
    ];
    let plans: Vec<(Strategy, ShardingPlan)> = strategies
        .iter()
        .map(|&s| (s, s.plan(&model, &profile, &system)))
        .collect();

    let run = |plan: &ShardingPlan, config: ClusterConfig| -> RunSummary {
        ClusterSimulator::new(&model, plan, &profile, &system, config).run()
    };

    // Calibrate the arrival interval: unloaded RecShard sojourn + 5% headroom.
    let calib = run(
        &plans[0].1,
        ClusterConfig {
            iterations: 200,
            arrival: ArrivalProcess::FixedRate { interval_ms: 1e6 },
            ..base_config
        },
    );
    let interval_ms = calib.p50_ms * 1.05;
    let config = ClusterConfig {
        arrival: ArrivalProcess::FixedRate { interval_ms },
        ..base_config
    };

    println!(
        "# DES cluster throughput: {} tables, {gpus} GPUs, {iterations} iterations, \
         batch {batch}, arrivals every {interval_ms:.3} ms (identical stream per strategy)",
        model.num_features()
    );
    println!();
    print_row(&[
        "strategy".into(),
        "p50 ms".into(),
        "p95 ms".into(),
        "p99 ms".into(),
        "iters/s".into(),
        "max queue wait ms".into(),
        "max GPU busy".into(),
    ]);
    print_row(&[
        "---".into(),
        "---".into(),
        "---".into(),
        "---".into(),
        "---".into(),
        "---".into(),
        "---".into(),
    ]);

    let mut results = Vec::new();
    for (strategy, plan) in &plans {
        let s = run(plan, config);
        print_row(&[
            strategy.label().into(),
            format!("{:.3}", s.p50_ms),
            format!("{:.3}", s.p95_ms),
            format!("{:.3}", s.p99_ms),
            format!("{:.1}", s.throughput_iters_per_s),
            format!("{:.3}", s.queue_wait.max),
            format!(
                "{:.0}%",
                s.busy_fraction.iter().cloned().fold(0.0, f64::max) * 100.0
            ),
        ]);
        results.push((strategy, s));
    }

    // Determinism check: replaying RecShard with the same seed must reproduce
    // the identical event log.
    let again = run(&plans[0].1, config);
    let recshard = &results[0].1;
    assert_eq!(
        recshard, &again,
        "identical seed must reproduce the identical summary"
    );
    println!();
    print!(
        "{}",
        determinism_report("RecShard replay", recshard.fingerprint, again.fingerprint)
    );

    let best_baseline_p99 = results[1..]
        .iter()
        .map(|(_, s)| s.p99_ms)
        .fold(f64::INFINITY, f64::min);
    let mut footer = RunReport::new("des_throughput");
    footer
        .push("RecShard p99 ms", format!("{:.3}", recshard.p99_ms))
        .push("best baseline p99 ms", format!("{best_baseline_p99:.3}"))
        .push("RecShard wins", recshard.p99_ms < best_baseline_p99)
        .push(
            "sustained iters/s",
            format!("{:.1}", recshard.throughput_iters_per_s),
        )
        .push("offered batches/s", format!("{:.1}", 1e3 / interval_ms))
        .push("simulator events", recshard.events);
    print!("{footer}");
    println!(
        "Baselines that fall behind the offered load queue without bound and \
         their tails diverge."
    );
}
