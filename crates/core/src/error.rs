//! Error type for the RecShard pipeline.

use recshard_milp::MilpError;
use recshard_sharding::ShardingError;

/// Errors produced by the RecShard pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum RecShardError {
    /// The model cannot fit in the system even with every row in UVM.
    CapacityExceeded {
        /// Bytes required by the model.
        required_bytes: u64,
        /// Bytes available across all tiers.
        available_bytes: u64,
    },
    /// The underlying sharding plan machinery reported an error.
    Sharding(ShardingError),
    /// The exact MILP solver reported an error.
    Milp(MilpError),
    /// The profile does not match the model.
    ProfileMismatch(String),
    /// The configuration is invalid (e.g. zero ICDF steps).
    InvalidConfig(String),
}

impl std::fmt::Display for RecShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecShardError::CapacityExceeded {
                required_bytes,
                available_bytes,
            } => write!(
                f,
                "model requires {required_bytes} bytes but the system only offers {available_bytes}"
            ),
            RecShardError::Sharding(e) => write!(f, "sharding error: {e}"),
            RecShardError::Milp(e) => write!(f, "MILP solver error: {e}"),
            RecShardError::ProfileMismatch(msg) => write!(f, "profile mismatch: {msg}"),
            RecShardError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for RecShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecShardError::Sharding(e) => Some(e),
            RecShardError::Milp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ShardingError> for RecShardError {
    fn from(e: ShardingError) -> Self {
        RecShardError::Sharding(e)
    }
}

impl From<MilpError> for RecShardError {
    fn from(e: MilpError) -> Self {
        RecShardError::Milp(e)
    }
}
