//! End-to-end DLRM training with simulated production-scale embedding timing:
//! trains a real (small) DLRM while charging each step the embedding time a
//! RecShard plan vs a baseline plan would incur, and reports the Amdahl's-law
//! end-to-end speedup (Section 6.4).
//!
//! Run with `cargo run --release -p recshard-bench --example dlrm_training`.

#![allow(clippy::print_stdout)]
use recshard::analysis::amdahl_end_to_end_speedup;
use recshard::{RecShard, RecShardConfig};
use recshard_data::{ModelSpec, SampleGenerator};
use recshard_dlrm::{DlrmConfig, DlrmModel, HybridParallelTrainer};
use recshard_memsim::{EmbeddingOpSimulator, SimConfig};
use recshard_sharding::{GreedySharder, SizeCost, SystemSpec};
use recshard_stats::DatasetProfiler;

fn main() {
    // A small feature universe we can actually materialise and train.
    let spec = ModelSpec::small(12, 5).scaled(8).with_batch_size(256);
    let emb_dim = spec.features()[0].embedding_dim as usize;
    let profile = DatasetProfiler::profile_model(&spec, 4_000, 3);
    // HBM pressure: only ~a third of the embeddings fit.
    let system = SystemSpec::uniform(2, spec.total_bytes() / 6, spec.total_bytes(), 1555.0, 16.0);

    let recshard_plan = RecShard::new(RecShardConfig::default())
        .plan(&spec, &profile, &system)
        .expect("recshard plan");
    let baseline_plan = GreedySharder::new(SizeCost)
        .shard(&spec, &profile, &system)
        .expect("baseline plan");

    let dlrm_cfg = DlrmConfig::new(8, vec![32, emb_dim], vec![32, 16, 1]);
    let sim_cfg = SimConfig::default();
    let dense_time_ms = 6.0; // data-parallel MLP + all-to-all time, unaffected by sharding

    let mut results = Vec::new();
    for (name, plan) in [("recshard", &recshard_plan), ("size-based", &baseline_plan)] {
        let model = DlrmModel::new(&spec, &dlrm_cfg, 21);
        let sim = EmbeddingOpSimulator::new(&spec, plan, &profile, &system, sim_cfg);
        let gen = SampleGenerator::new(&spec, 17);
        let mut trainer = HybridParallelTrainer::new(model, sim, gen, dense_time_ms, 128, 9);
        let reports = trainer.run(20, 64, 0.05);
        let first_loss = reports.first().unwrap().loss;
        let last_loss = reports.last().unwrap().loss;
        let emb_ms: f64 =
            reports.iter().map(|r| r.embedding_time_ms).sum::<f64>() / reports.len() as f64;
        let step_ms: f64 =
            reports.iter().map(|r| r.step_time_ms()).sum::<f64>() / reports.len() as f64;
        println!(
            "{name:<11} loss {first_loss:.3} -> {last_loss:.3} | embedding {emb_ms:.2} ms/step | \
             full step {step_ms:.2} ms | embedding share {:.0}%",
            100.0 * emb_ms / step_ms
        );
        results.push((name, emb_ms, step_ms));
    }

    let (_, rec_emb, rec_step) = results[0];
    let (_, base_emb, base_step) = results[1];
    let emb_speedup = base_emb / rec_emb;
    let p = base_emb / base_step;
    println!();
    println!(
        "embedding speedup {emb_speedup:.2}x at an embedding share of {:.0}% -> measured \
         end-to-end speedup {:.2}x (Amdahl predicts {:.2}x)",
        p * 100.0,
        base_step / rec_step,
        amdahl_end_to_end_speedup(p, emb_speedup)
    );
}
