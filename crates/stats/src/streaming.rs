//! Streaming summary statistics: mean / variance / extrema
//! ([`WelfordAccumulator`]) and constant-space quantile estimation
//! ([`P2Quantile`], [`StreamingCdf`]).
//!
//! The discrete-event cluster simulator (`recshard-des`) replays millions of
//! training iterations and reports tail latency, so it cannot buffer every
//! iteration time. [`StreamingCdf`] tracks an arbitrary set of percentiles in
//! O(1) space per percentile with the deterministic P² algorithm (Jain &
//! Chlamtac, CACM 1985), alongside exact mean/min/max from Welford's method.

use serde::{Deserialize, Serialize};

/// Welford's online algorithm for mean and variance, plus extrema.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct WelfordAccumulator {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl WelfordAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance of the observations (0 when fewer than two).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &WelfordAccumulator) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Snapshot of the accumulated statistics.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            min: self.min().unwrap_or(0.0),
            max: self.max().unwrap_or(0.0),
            mean: self.mean(),
            std_dev: self.std_dev(),
        }
    }
}

/// Min / max / mean / standard deviation of a set of observations — the
/// format Table 3 of the paper reports per-GPU iteration times in.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
    /// Mean observation.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

impl Summary {
    /// Computes a summary from a slice of observations.
    pub fn of(values: &[f64]) -> Self {
        let mut acc = WelfordAccumulator::new();
        for &v in values {
            acc.push(v);
        }
        acc.summary()
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.2}/{:.2}/{:.2}/{:.2}",
            self.min, self.max, self.mean, self.std_dev
        )
    }
}

/// Constant-space streaming estimator of a single quantile using the P²
/// (piecewise-parabolic) algorithm.
///
/// The estimator keeps five markers that track the minimum, the target
/// quantile, the quantiles halfway to each extreme, and the maximum; marker
/// heights are adjusted with a parabolic prediction as observations arrive.
/// It is deterministic (no sampling), exact for the first five observations,
/// and typically within a fraction of a percent of the true quantile for
/// unimodal distributions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (estimates of the tracked quantiles).
    heights: [f64; 5],
    /// Actual marker positions (1-based observation ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired-position increments applied per observation.
    increments: [f64; 5],
    count: u64,
}

impl P2Quantile {
    /// Creates an estimator for quantile `q`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < q < 1`.
    pub fn new(q: f64) -> Self {
        assert!(
            q > 0.0 && q < 1.0,
            "quantile must be strictly inside (0, 1)"
        );
        Self {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// The quantile this estimator tracks.
    pub fn quantile(&self) -> f64 {
        self.q
    }

    /// Number of observations consumed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        if self.count < 5 {
            self.heights[self.count as usize] = value;
            self.count += 1;
            if self.count == 5 {
                self.heights.sort_by(f64::total_cmp);
            }
            return;
        }
        self.count += 1;

        // Find the cell the observation falls into, widening an extreme
        // marker if it lands outside the current range.
        let k = if value < self.heights[0] {
            self.heights[0] = value;
            0
        } else if value >= self.heights[4] {
            self.heights[4] = value;
            3
        } else {
            // heights[k] <= value < heights[k + 1]
            (1..4).rfind(|&i| self.heights[i] <= value).unwrap_or(0)
        };

        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }

        // Nudge the three interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let d = d.signum();
                let parabolic = self.parabolic(i, d);
                let new_height =
                    if self.heights[i - 1] < parabolic && parabolic < self.heights[i + 1] {
                        parabolic
                    } else {
                        self.linear(i, d)
                    };
                self.heights[i] = new_height;
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (h, n) = (&self.heights, &self.positions);
        h[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// The current estimate of the tracked quantile (`None` when empty).
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.count <= 5 {
            // Exact: interpolate the sorted prefix.
            let mut sorted = self.heights;
            let n = self.count as usize;
            sorted[..n].sort_by(f64::total_cmp);
            let rank = self.q * (n - 1) as f64;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            let frac = rank - lo as f64;
            return Some(sorted[lo] * (1.0 - frac) + sorted[hi.min(n - 1)] * frac);
        }
        Some(self.heights[2])
    }
}

/// Streaming CDF summary of a latency-like metric: a set of [`P2Quantile`]
/// markers plus exact [`WelfordAccumulator`] moments, all in constant space.
///
/// This is the sink the discrete-event simulator streams per-iteration times
/// into; [`StreamingCdf::p50`]/[`p95`](StreamingCdf::p95)/[`p99`](StreamingCdf::p99)
/// are the numbers its reports quote.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamingCdf {
    quantiles: Vec<P2Quantile>,
    moments: WelfordAccumulator,
    /// Exact buffer of the first observations: short streams get exact
    /// quantiles, and the independent P² markers (which can invert on tiny
    /// samples) only take over once they have data to stabilise on.
    head: Vec<f64>,
}

/// Observations buffered exactly before [`StreamingCdf`] switches to its P²
/// estimates.
const STREAMING_CDF_EXACT_HEAD: usize = 64;

impl StreamingCdf {
    /// Creates a CDF tracking the given quantiles (each strictly in `(0,1)`),
    /// sorted ascending.
    pub fn new(quantiles: &[f64]) -> Self {
        let mut qs: Vec<f64> = quantiles.to_vec();
        qs.sort_by(f64::total_cmp);
        Self {
            quantiles: qs.iter().map(|&q| P2Quantile::new(q)).collect(),
            moments: WelfordAccumulator::new(),
            head: Vec::new(),
        }
    }

    /// The conventional latency summary: p50, p95 and p99.
    pub fn latency_defaults() -> Self {
        Self::new(&[0.50, 0.95, 0.99])
    }

    /// Adds one observation to every tracked quantile and the moments.
    pub fn push(&mut self, value: f64) {
        for q in &mut self.quantiles {
            q.push(value);
        }
        self.moments.push(value);
        if self.head.len() < STREAMING_CDF_EXACT_HEAD {
            self.head.push(value);
        }
    }

    /// Number of observations consumed.
    pub fn count(&self) -> u64 {
        self.moments.count()
    }

    /// The estimate for the tracked quantile `q`.
    ///
    /// Exact while at most [`STREAMING_CDF_EXACT_HEAD`] observations have
    /// been pushed; afterwards the P² estimate, monotone-repaired so that a
    /// higher tracked quantile never reports a smaller value than a lower
    /// one.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not tracked or no observations were pushed.
    pub fn quantile(&self, q: f64) -> f64 {
        let idx = self
            .quantiles
            .iter()
            .position(|m| (m.q - q).abs() < 1e-9)
            .unwrap_or_else(|| panic!("quantile {q} is not tracked"));
        assert!(self.count() > 0, "no observations pushed");
        if self.count() <= self.head.len() as u64 {
            let mut sorted = self.head.clone();
            sorted.sort_by(f64::total_cmp);
            let rank = q * (sorted.len() - 1) as f64;
            let lo = rank.floor() as usize;
            let frac = rank - lo as f64;
            let hi = (lo + 1).min(sorted.len() - 1);
            return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
        }
        // Monotone repair: running max over markers up to and including q.
        self.quantiles[..=idx]
            .iter()
            .filter_map(|m| m.estimate())
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Median estimate.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Exact mean/min/max/std of everything pushed.
    pub fn summary(&self) -> Summary {
        self.moments.summary()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_match_direct_computation() {
        let values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = Summary::of(&values);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.count, 8);
    }

    #[test]
    fn empty_accumulator_is_safe() {
        let acc = WelfordAccumulator::new();
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.variance(), 0.0);
        assert_eq!(acc.min(), None);
        assert_eq!(acc.max(), None);
        assert_eq!(acc.summary().count, 0);
    }

    #[test]
    fn merge_equals_sequential() {
        let values: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = WelfordAccumulator::new();
        for &v in &values {
            all.push(v);
        }
        let mut a = WelfordAccumulator::new();
        let mut b = WelfordAccumulator::new();
        for &v in &values[..37] {
            a.push(v);
        }
        for &v in &values[37..] {
            b.push(v);
        }
        a.merge(&b);
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.count(), all.count());
    }

    #[test]
    fn merge_with_empty_sides() {
        let mut a = WelfordAccumulator::new();
        a.push(1.0);
        let empty = WelfordAccumulator::new();
        let mut b = a;
        b.merge(&empty);
        assert_eq!(b, a);
        let mut c = WelfordAccumulator::new();
        c.merge(&a);
        assert_eq!(c, a);
    }

    #[test]
    fn display_is_paper_format() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(format!("{s}"), "1.00/3.00/2.00/0.82");
    }

    /// Deterministic pseudo-random stream (no rand dependency in this crate's
    /// tests) — SplitMix64 mapped to [0, 1).
    fn uniform_stream(seed: u64, n: usize) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (z ^ (z >> 31)) as f64 / u64::MAX as f64
            })
            .collect()
    }

    fn exact_quantile(values: &[f64], q: f64) -> f64 {
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        sorted[((sorted.len() - 1) as f64 * q).round() as usize]
    }

    #[test]
    fn p2_exact_for_small_streams() {
        let mut est = P2Quantile::new(0.5);
        assert_eq!(est.estimate(), None);
        est.push(3.0);
        assert_eq!(est.estimate(), Some(3.0));
        est.push(1.0);
        est.push(2.0);
        // Median of {1, 2, 3}.
        assert_eq!(est.estimate(), Some(2.0));
    }

    #[test]
    fn p2_tracks_uniform_quantiles() {
        let values = uniform_stream(42, 50_000);
        for q in [0.5, 0.95, 0.99] {
            let mut est = P2Quantile::new(q);
            for &v in &values {
                est.push(v);
            }
            let got = est.estimate().unwrap();
            let want = exact_quantile(&values, q);
            assert!(
                (got - want).abs() < 0.01,
                "P2 estimate {got} for q={q} too far from exact {want}"
            );
        }
    }

    #[test]
    fn p2_tracks_heavy_tailed_quantiles() {
        // Pareto-ish: x = (1 - u)^(-1) spans orders of magnitude, the shape
        // of queueing-delay tails the DES reports.
        let values: Vec<f64> = uniform_stream(7, 50_000)
            .iter()
            .map(|u| (1.0 - u).powi(-1))
            .collect();
        for q in [0.5, 0.95] {
            let mut est = P2Quantile::new(q);
            for &v in &values {
                est.push(v);
            }
            let got = est.estimate().unwrap();
            let want = exact_quantile(&values, q);
            assert!(
                (got / want - 1.0).abs() < 0.05,
                "P2 estimate {got} for q={q} more than 5% from exact {want}"
            );
        }
    }

    #[test]
    fn p2_is_deterministic() {
        let values = uniform_stream(9, 10_000);
        let run = || {
            let mut est = P2Quantile::new(0.99);
            for &v in &values {
                est.push(v);
            }
            est.estimate().unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn streaming_cdf_percentiles_are_ordered() {
        let mut cdf = StreamingCdf::latency_defaults();
        for v in uniform_stream(11, 20_000) {
            cdf.push(v * 10.0);
        }
        assert_eq!(cdf.count(), 20_000);
        assert!(cdf.p50() <= cdf.p95());
        assert!(cdf.p95() <= cdf.p99());
        let s = cdf.summary();
        assert!(s.min <= cdf.p50() && cdf.p99() <= s.max);
    }

    #[test]
    fn streaming_cdf_exact_for_short_streams() {
        let mut cdf = StreamingCdf::latency_defaults();
        for v in [5.0, 1.0, 9.0, 3.0, 7.0, 2.0, 8.0, 4.0, 6.0] {
            cdf.push(v);
        }
        // Exact sample median of 1..=9.
        assert!((cdf.p50() - 5.0).abs() < 1e-12);
        assert!(cdf.p50() <= cdf.p95() && cdf.p95() <= cdf.p99());
        assert!(cdf.p99() <= 9.0);
    }

    #[test]
    fn streaming_cdf_monotone_after_head() {
        let mut cdf = StreamingCdf::latency_defaults();
        for v in uniform_stream(23, 500) {
            cdf.push(v);
        }
        assert!(cdf.p50() <= cdf.p95() && cdf.p95() <= cdf.p99());
    }

    #[test]
    #[should_panic(expected = "not tracked")]
    fn streaming_cdf_rejects_untracked_quantile() {
        let mut cdf = StreamingCdf::new(&[0.5]);
        cdf.push(1.0);
        let _ = cdf.quantile(0.9);
    }

    #[test]
    #[should_panic(expected = "strictly inside")]
    fn p2_rejects_degenerate_quantile() {
        let _ = P2Quantile::new(1.0);
    }
}
