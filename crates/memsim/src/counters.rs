//! Per-GPU access counters.

use serde::{Deserialize, Serialize};

/// Counts of embedding-row accesses served by each memory tier, plus the
/// bytes they moved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessCounters {
    /// Embedding rows read from HBM.
    pub hbm_accesses: u64,
    /// Embedding rows read from UVM (host DRAM over the interconnect).
    pub uvm_accesses: u64,
    /// Bytes read from HBM.
    pub hbm_bytes: u64,
    /// Bytes read from UVM.
    pub uvm_bytes: u64,
}

impl AccessCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `rows` row reads of `row_bytes` bytes each from HBM.
    #[inline]
    pub fn record_hbm(&mut self, rows: u64, row_bytes: u64) {
        self.hbm_accesses += rows;
        self.hbm_bytes += rows * row_bytes;
    }

    /// Records `rows` row reads of `row_bytes` bytes each from UVM.
    #[inline]
    pub fn record_uvm(&mut self, rows: u64, row_bytes: u64) {
        self.uvm_accesses += rows;
        self.uvm_bytes += rows * row_bytes;
    }

    /// Total row accesses across both tiers.
    pub fn total_accesses(&self) -> u64 {
        self.hbm_accesses + self.uvm_accesses
    }

    /// Fraction of accesses served from UVM (0 when there were none).
    pub fn uvm_access_fraction(&self) -> f64 {
        let total = self.total_accesses();
        if total == 0 {
            0.0
        } else {
            self.uvm_accesses as f64 / total as f64
        }
    }

    /// Adds another counter's contents into this one.
    pub fn merge(&mut self, other: &AccessCounters) {
        self.hbm_accesses += other.hbm_accesses;
        self.uvm_accesses += other.uvm_accesses;
        self.hbm_bytes += other.hbm_bytes;
        self.uvm_bytes += other.uvm_bytes;
    }

    /// Returns a copy with every count multiplied by `factor` (used to scale
    /// a sub-sampled batch up to the full batch size).
    pub fn scaled(&self, factor: f64) -> AccessCounters {
        AccessCounters {
            hbm_accesses: (self.hbm_accesses as f64 * factor).round() as u64,
            uvm_accesses: (self.uvm_accesses as f64 * factor).round() as u64,
            hbm_bytes: (self.hbm_bytes as f64 * factor).round() as u64,
            uvm_bytes: (self.uvm_bytes as f64 * factor).round() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut c = AccessCounters::new();
        c.record_hbm(10, 256);
        c.record_uvm(5, 256);
        assert_eq!(c.total_accesses(), 15);
        assert_eq!(c.hbm_bytes, 2560);
        assert_eq!(c.uvm_bytes, 1280);
        assert!((c.uvm_access_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds() {
        let mut a = AccessCounters::new();
        a.record_hbm(1, 64);
        let mut b = AccessCounters::new();
        b.record_uvm(2, 64);
        a.merge(&b);
        assert_eq!(a.hbm_accesses, 1);
        assert_eq!(a.uvm_accesses, 2);
        assert_eq!(a.uvm_bytes, 128);
    }

    #[test]
    fn scaling_multiplies_counts() {
        let mut c = AccessCounters::new();
        c.record_hbm(10, 100);
        c.record_uvm(4, 100);
        let s = c.scaled(2.5);
        assert_eq!(s.hbm_accesses, 25);
        assert_eq!(s.uvm_accesses, 10);
        assert_eq!(s.hbm_bytes, 2500);
    }

    #[test]
    fn empty_counters_fraction_is_zero() {
        assert_eq!(AccessCounters::new().uvm_access_fraction(), 0.0);
    }
}
