//! Criterion bench for the remapping layer (Section 4.3 / Section 6.6):
//! building the per-table remap tables and the per-lookup translation cost.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use recshard::{RecShard, RecShardConfig};
use recshard_bench::ExperimentConfig;
use recshard_data::RmKind;
use recshard_memsim::EmbeddingOpSimulator;
use recshard_stats::DatasetProfiler;

fn remapping(c: &mut Criterion) {
    let mut cfg = ExperimentConfig::fast();
    cfg.scale = 8_192;
    cfg.profile_samples = 1_500;
    let model = cfg.model(RmKind::Rm2);
    let system = cfg.system();
    let profile = DatasetProfiler::profile_model(&model, cfg.profile_samples, cfg.seed);
    let plan = RecShard::new(RecShardConfig::default())
        .plan(&model, &profile, &system)
        .expect("plan");

    let mut group = c.benchmark_group("remapping");
    group.sample_size(10);
    group.bench_function("build_remap_tables_397_tables", |b| {
        b.iter(|| EmbeddingOpSimulator::build_remap_tables(&plan, &profile));
    });

    let remaps = EmbeddingOpSimulator::build_remap_tables(&plan, &profile);
    let biggest = remaps
        .iter()
        .max_by_key(|r| r.total_rows())
        .expect("non-empty");
    let rows: Vec<u64> = (0..biggest.total_rows()).step_by(7).collect();
    group.throughput(Throughput::Elements(rows.len() as u64));
    group.bench_function("lookup_translation", |b| {
        b.iter(|| rows.iter().map(|&r| biggest.lookup(r).slot).sum::<u64>());
    });
    group.finish();
}

criterion_group!(benches, remapping);
criterion_main!(benches);
