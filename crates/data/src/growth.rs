//! DLRM requirement growth trends and the training-hardware catalog.
//!
//! Figure 1 of the paper motivates RecShard by showing that between 2017 and
//! 2021 DLRM memory capacity requirements grew by ~16x and per-sample
//! bandwidth demand by ~30x, while GPU HBM capacity improved by less than 6x
//! and interconnect bandwidth by ~2x. This module encodes those trends and a
//! small catalog of the accelerator generations the figure references so the
//! figure can be regenerated.

use serde::{Deserialize, Serialize};

/// A GPU generation relevant to DLRM training (Figure 1's annotations).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuGeneration {
    /// Marketing name, e.g. "A100 (40GB)".
    pub name: String,
    /// Year of introduction.
    pub year: u32,
    /// HBM capacity in GiB.
    pub hbm_capacity_gib: f64,
    /// HBM bandwidth in GB/s.
    pub hbm_bandwidth_gbps: f64,
    /// Interconnect (NVLink) bandwidth in GB/s available to the device.
    pub interconnect_bandwidth_gbps: f64,
}

/// Catalog of training accelerators across the 2017–2021 window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareCatalog {
    generations: Vec<GpuGeneration>,
}

impl Default for HardwareCatalog {
    fn default() -> Self {
        Self::paper_window()
    }
}

impl HardwareCatalog {
    /// The accelerators annotated in Figure 1 (public datasheet numbers).
    pub fn paper_window() -> Self {
        let generations = vec![
            GpuGeneration {
                name: "P100".into(),
                year: 2017,
                hbm_capacity_gib: 16.0,
                hbm_bandwidth_gbps: 732.0,
                interconnect_bandwidth_gbps: 160.0,
            },
            GpuGeneration {
                name: "V100".into(),
                year: 2018,
                hbm_capacity_gib: 32.0,
                hbm_bandwidth_gbps: 900.0,
                interconnect_bandwidth_gbps: 300.0,
            },
            GpuGeneration {
                name: "A100 (40GB)".into(),
                year: 2020,
                hbm_capacity_gib: 40.0,
                hbm_bandwidth_gbps: 1555.0,
                interconnect_bandwidth_gbps: 600.0,
            },
            GpuGeneration {
                name: "A100 (80GB)".into(),
                year: 2021,
                hbm_capacity_gib: 80.0,
                hbm_bandwidth_gbps: 2039.0,
                interconnect_bandwidth_gbps: 600.0,
            },
        ];
        Self { generations }
    }

    /// All catalogued generations, ordered by year.
    pub fn generations(&self) -> &[GpuGeneration] {
        &self.generations
    }

    /// First and last catalogued generations. Every constructor installs the
    /// hardcoded non-empty series, so both endpoints always exist.
    fn endpoints(&self) -> (&GpuGeneration, &GpuGeneration) {
        // recshard-lint: allow(unwrap) -- the catalog is only built from the
        // hardcoded non-empty series above.
        let first = self.generations.first().expect("catalog not empty");
        // recshard-lint: allow(unwrap) -- same invariant.
        let last = self.generations.last().expect("catalog not empty");
        (first, last)
    }

    /// Growth multiple of HBM capacity between the first and last generation.
    pub fn hbm_capacity_growth(&self) -> f64 {
        let (first, last) = self.endpoints();
        last.hbm_capacity_gib / first.hbm_capacity_gib
    }

    /// Growth multiple of interconnect bandwidth between the first and last
    /// generation.
    pub fn interconnect_growth(&self) -> f64 {
        let (first, last) = self.endpoints();
        last.interconnect_bandwidth_gbps / first.interconnect_bandwidth_gbps
    }

    /// Growth multiple of HBM bandwidth between the first and last generation.
    pub fn hbm_bandwidth_growth(&self) -> f64 {
        let (first, last) = self.endpoints();
        last.hbm_bandwidth_gbps / first.hbm_bandwidth_gbps
    }
}

/// One year of the DLRM requirement growth trend (Figure 1a/1b series).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GrowthPoint {
    /// Calendar year.
    pub year: u32,
    /// DLRM total model capacity, normalised to the 2017 model (=1.0).
    pub model_capacity_growth: f64,
    /// DLRM total embedding rows, normalised to 2017.
    pub emb_rows_growth: f64,
    /// Per-sample bandwidth demand (EMB rows accessed per sample),
    /// normalised to 2017.
    pub bandwidth_demand_growth: f64,
}

/// The DLRM requirement growth trend the paper reports for 2017–2021:
/// capacity ×16, rows ×12, bandwidth ×28.35 — both growing super-linearly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GrowthTrend {
    points: Vec<GrowthPoint>,
}

impl Default for GrowthTrend {
    fn default() -> Self {
        Self::paper_window()
    }
}

impl GrowthTrend {
    /// The 2017–2021 growth series Figure 1 plots (super-linear growth ending
    /// at the multiples the paper quotes: 16x capacity, ~28x bandwidth).
    pub fn paper_window() -> Self {
        // Super-linear (roughly geometric) interpolation hitting the reported
        // end-points: capacity 16x over 4 steps (2.0x/yr), bandwidth 28.35x
        // (~2.3x/yr), rows ~12x (1.86x/yr).
        let years = [2017u32, 2018, 2019, 2020, 2021];
        let cap_rate = 16f64.powf(0.25);
        let row_rate = 12f64.powf(0.25);
        let bw_rate = 28.35f64.powf(0.25);
        let points = years
            .iter()
            .enumerate()
            .map(|(i, &year)| GrowthPoint {
                year,
                model_capacity_growth: cap_rate.powi(i as i32),
                emb_rows_growth: row_rate.powi(i as i32),
                bandwidth_demand_growth: bw_rate.powi(i as i32),
            })
            .collect();
        Self { points }
    }

    /// The yearly series.
    pub fn points(&self) -> &[GrowthPoint] {
        &self.points
    }

    /// First and last points of the series. The trend is only built from the
    /// hardcoded five-year window, so both endpoints always exist.
    fn endpoints(&self) -> (&GrowthPoint, &GrowthPoint) {
        // recshard-lint: allow(unwrap) -- the series is only built from the
        // hardcoded non-empty paper window above.
        let first = self.points.first().expect("non-empty");
        // recshard-lint: allow(unwrap) -- same invariant.
        let last = self.points.last().expect("non-empty");
        (first, last)
    }

    /// Final-over-first growth multiple of model capacity.
    pub fn capacity_growth(&self) -> f64 {
        let (first, last) = self.endpoints();
        last.model_capacity_growth / first.model_capacity_growth
    }

    /// Final-over-first growth multiple of bandwidth demand.
    pub fn bandwidth_growth(&self) -> f64 {
        let (first, last) = self.endpoints();
        last.bandwidth_demand_growth / first.bandwidth_demand_growth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_paper_claims() {
        let c = HardwareCatalog::paper_window();
        // "memory capacity on GPU accelerators has improved by less than 6x"
        assert!(c.hbm_capacity_growth() < 6.0);
        assert!(c.hbm_capacity_growth() > 4.0);
        // HBM bandwidth grew by ~2.8x, interconnect well under 4x.
        assert!(c.hbm_bandwidth_growth() < 3.0);
        assert!(c.interconnect_growth() < 4.0);
        assert_eq!(c.generations().len(), 4);
    }

    #[test]
    fn growth_trend_matches_paper_multiples() {
        let t = GrowthTrend::paper_window();
        assert!((t.capacity_growth() - 16.0).abs() < 0.5);
        assert!((t.bandwidth_growth() - 28.35).abs() < 0.5);
        assert_eq!(t.points().len(), 5);
    }

    #[test]
    fn growth_is_monotone_and_super_linear() {
        let t = GrowthTrend::paper_window();
        let pts = t.points();
        for w in pts.windows(2) {
            assert!(w[1].model_capacity_growth > w[0].model_capacity_growth);
            assert!(w[1].bandwidth_demand_growth > w[0].bandwidth_demand_growth);
        }
        // Super-linear: later yearly increments are larger than earlier ones.
        let first_step = pts[1].model_capacity_growth - pts[0].model_capacity_growth;
        let last_step = pts[4].model_capacity_growth - pts[3].model_capacity_growth;
        assert!(last_step > first_step);
    }

    #[test]
    fn demand_outpaces_hardware() {
        // The core motivation of Figure 1: demand growth exceeds hardware growth.
        let t = GrowthTrend::paper_window();
        let c = HardwareCatalog::paper_window();
        assert!(t.capacity_growth() > c.hbm_capacity_growth());
        assert!(t.bandwidth_growth() > c.hbm_bandwidth_growth());
        assert!(t.bandwidth_growth() > c.interconnect_growth());
    }
}
