//! # recshard-memsim
//!
//! Tiered-memory training-system simulator for the RecShard reproduction.
//!
//! The paper measures embedding-operator performance on a real 16× A100
//! server by tracing FBGEMM kernels. Without GPUs, this crate simulates the
//! part of that system the paper's results depend on: it drives *actual
//! multi-hot lookups* (hashed row indices from `recshard-data`) through a
//! sharding plan's remapping tables, counts per-GPU HBM and UVM row accesses,
//! and charges each GPU the same cost model the paper uses —
//! `bytes_from_HBM / BW_HBM + bytes_from_UVM / BW_UVM` plus a per-kernel
//! overhead — with the iteration time being the maximum across GPUs
//! (training is synchronous).
//!
//! The absolute milliseconds differ from the paper's hardware, but the
//! quantities the paper reports (access counts per tier, load balance,
//! relative speedups between sharding strategies) are functions of *where
//! accesses land*, which the simulation computes exactly.
//!
//! ## Analytical model vs. discrete-event model
//!
//! This crate answers **single-iteration, steady-state** questions with two
//! tools that share one timing model ([`embedding_kernel_time_ms`]):
//!
//! * [`AnalyticalEstimator`] — closed-form *expected* per-GPU access counts
//!   and times, straight from the profile's CDFs. This is exactly the
//!   objective RecShard's MILP optimises; use it when you need the number the
//!   solver believes, or a fast estimate without sampling (e.g. to calibrate
//!   an arrival rate).
//! * [`EmbeddingOpSimulator`] — trace-driven: draws actual multi-hot batches
//!   and counts where every lookup lands. Use it to validate plans against
//!   sampled (rather than expected) traffic, and for the per-tier access
//!   counts of Tables 5–6.
//!
//! Neither models *time-extended* behaviour: batches queueing behind a slow
//! GPU, the all-to-all barrier, tail latency, workload drift, or online
//! re-sharding. Those are the `recshard-des` crate's job — its
//! `ClusterSimulator` replays a plan through an event-driven cluster with
//! per-GPU FIFO stations (service times charged by this crate's
//! [`embedding_kernel_time_ms`] formula) and reports sustained throughput and
//! p50/p95/p99 sojourn times. Rule of thumb: "how expensive is an
//! iteration?" → this crate; "what happens to the training pipeline over a
//! million iterations?" → `recshard-des`.
//!
//! The bridge between the two views is
//! [`AnalyticalEstimator::exchange_time_ms`]: a no-queueing lower bound on
//! one all-to-all exchange over a shared `recshard_sharding::FabricSpec`,
//! computed from the *same* per-link volumes the DES's shared-rate
//! contention mode admits on its NVLink and fabric links. For one isolated
//! exchange the two agree; under load the DES reports more, because
//! consecutive iterations' transfers share the links — exactly the
//! queueing/incast effect the closed form assumes away.
//!
//! ```
//! use recshard_data::ModelSpec;
//! use recshard_stats::DatasetProfiler;
//! use recshard_sharding::{GreedySharder, SizeCost, SystemSpec};
//! use recshard_memsim::{EmbeddingOpSimulator, SimConfig};
//!
//! let model = ModelSpec::small(6, 3);
//! let profile = DatasetProfiler::profile_model(&model, 500, 1);
//! let system = SystemSpec::uniform(2, u64::MAX / 4, u64::MAX / 4, 1555.0, 16.0);
//! let plan = GreedySharder::new(SizeCost).shard(&model, &profile, &system).unwrap();
//! let mut sim = EmbeddingOpSimulator::new(&model, &plan, &profile, &system, SimConfig::default());
//! let report = sim.run(3, 64, 42);
//! assert_eq!(report.iterations(), 3);
//! ```
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod analytical;
pub mod counters;
pub mod engine;
pub mod timing;

pub use analytical::AnalyticalEstimator;
pub use counters::AccessCounters;
pub use engine::{
    sample_batch_accesses, EmbeddingOpSimulator, GpuIterationStats, IterationReport, RunReport,
    SimConfig,
};
pub use timing::embedding_kernel_time_ms;
