//! The per-table cost model shared by the MILP formulation and the
//! structured solver (constraints 11 and 12 of the paper).

use crate::config::RecShardConfig;
use recshard_sharding::DeviceClass;
use recshard_stats::FeatureProfile;
use serde::{Deserialize, Serialize};

/// One candidate split of a table: keep the `hbm_rows` hottest rows in HBM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SplitOption {
    /// ICDF step index this option corresponds to (0..=steps).
    pub step: usize,
    /// Number of the table's hottest rows kept in HBM.
    pub hbm_rows: u64,
    /// HBM bytes consumed by the option.
    pub hbm_bytes: u64,
    /// UVM bytes consumed by the option (the remainder of the table).
    pub uvm_bytes: u64,
    /// Fraction of the table's accesses expected to be served from HBM.
    pub hbm_access_fraction: f64,
    /// The per-iteration cost of the table under this option, already
    /// weighted by coverage (the `coverage_j * c_j` term of constraint 12).
    pub weighted_cost: f64,
}

/// The full menu of split options for one table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableCostModel {
    /// Dense table index.
    pub table: usize,
    /// Total rows of the table.
    pub total_rows: u64,
    /// Bytes per row.
    pub row_bytes: u64,
    /// Candidate splits, indexed by ICDF step (monotonically non-decreasing
    /// HBM rows and non-increasing cost).
    pub options: Vec<SplitOption>,
}

impl TableCostModel {
    /// Builds the cost menu for one table from its profile.
    ///
    /// The cost of a split follows constraint 11 of the paper: the table's
    /// expected per-iteration bytes (`avg_pool * dim * bytes * B`) split
    /// between HBM and UVM according to the fraction of accesses the chosen
    /// hot-row set covers, each scaled by the corresponding bandwidth. The
    /// result is multiplied by coverage (constraint 12). The ablation switches
    /// in [`RecShardConfig`] replace pooling and/or coverage with 1.
    ///
    /// Costs are built against one [`DeviceClass`]'s bandwidths: on a
    /// heterogeneous cluster the same split has a different cost per class,
    /// so solvers build (or evaluate) one menu per class. The menu's
    /// *geometry* — row counts and bytes per step — depends only on the
    /// profile and is identical across classes.
    pub fn build(
        table: usize,
        profile: &FeatureProfile,
        device: &DeviceClass,
        batch_size: u32,
        config: &RecShardConfig,
    ) -> Self {
        let row_bytes = profile.row_bytes();
        let icdf = profile.icdf(config.icdf_steps);
        let pooling = if config.use_pooling {
            profile.avg_pooling.max(0.0)
        } else {
            1.0
        };
        let coverage = if config.use_coverage {
            profile.coverage
        } else {
            1.0
        };
        // Expected bytes the table moves per iteration (before tier split).
        let per_iter_bytes = pooling * row_bytes as f64 * batch_size as f64;
        let hbm_gbps = device.hbm_bandwidth_gbps * 1e9;
        let uvm_gbps = device.uvm_bandwidth_gbps * 1e9;

        let mut options = Vec::with_capacity(config.icdf_steps + 1);
        for step in 0..=config.icdf_steps {
            let hbm_rows = icdf.rows_at_step(step).min(profile.hash_size);
            // Use the *actual* CDF value at the chosen row count rather than
            // the nominal step fraction: identical row counts then yield
            // identical costs, keeping the option list monotone.
            let pct = profile.cdf.access_fraction(hbm_rows);
            let cost_seconds = per_iter_bytes * (pct / hbm_gbps + (1.0 - pct) / uvm_gbps);
            options.push(SplitOption {
                step,
                hbm_rows,
                hbm_bytes: hbm_rows * row_bytes,
                uvm_bytes: (profile.hash_size - hbm_rows) * row_bytes,
                hbm_access_fraction: pct,
                weighted_cost: coverage * cost_seconds * 1e3, // milliseconds
            });
        }
        Self {
            table,
            total_rows: profile.hash_size,
            row_bytes,
            options,
        }
    }

    /// The coverage-weighted per-iteration cost (milliseconds) of keeping the
    /// `hbm_rows` hottest rows of `profile`'s table in HBM — the single-point
    /// version of [`build`](Self::build), `O(1)` thanks to the indexed CDF.
    /// The scalable solver uses this to score every *member* of a bucket
    /// exactly while only the step menus are shared, and the per-GPU cost
    /// evaluators use it with the *owning GPU's* device class so a
    /// heterogeneous cluster charges every table the bandwidths of the GPU
    /// it actually lives on.
    pub fn weighted_cost_at(
        profile: &FeatureProfile,
        device: &DeviceClass,
        batch_size: u32,
        config: &RecShardConfig,
        hbm_rows: u64,
    ) -> f64 {
        let pooling = if config.use_pooling {
            profile.avg_pooling.max(0.0)
        } else {
            1.0
        };
        let coverage = if config.use_coverage {
            profile.coverage
        } else {
            1.0
        };
        // Expected bytes the table moves per iteration (before tier split).
        let per_iter_bytes = pooling * profile.row_bytes() as f64 * batch_size as f64;
        let hbm_gbps = device.hbm_bandwidth_gbps * 1e9;
        let uvm_gbps = device.uvm_bandwidth_gbps * 1e9;
        let pct = profile.cdf.access_fraction(hbm_rows.min(profile.hash_size));
        let cost_seconds = per_iter_bytes * (pct / hbm_gbps + (1.0 - pct) / uvm_gbps);
        coverage * cost_seconds * 1e3 // milliseconds
    }

    /// The option at a given ICDF step.
    pub fn option(&self, step: usize) -> &SplitOption {
        &self.options[step]
    }

    /// The last (most HBM-hungry, cheapest) option.
    pub fn max_option(&self) -> &SplitOption {
        self.options.last().expect("at least one option")
    }

    /// The first (no-HBM, most expensive) option.
    pub fn min_option(&self) -> &SplitOption {
        self.options.first().expect("at least one option")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recshard_data::ModelSpec;
    use recshard_stats::DatasetProfiler;

    fn build_one() -> TableCostModel {
        let model = ModelSpec::small(3, 6);
        let profile = DatasetProfiler::profile_model(&model, 3_000, 2);
        let device = DeviceClass::new("gpu", 1 << 30, 1 << 34, 1555.0, 16.0);
        TableCostModel::build(
            0,
            &profile.profiles()[0],
            &device,
            256,
            &RecShardConfig::default(),
        )
    }

    #[test]
    fn options_are_monotone() {
        let m = build_one();
        for w in m.options.windows(2) {
            assert!(w[1].hbm_rows >= w[0].hbm_rows);
            assert!(w[1].hbm_bytes >= w[0].hbm_bytes);
            assert!(w[1].weighted_cost <= w[0].weighted_cost + 1e-12);
            assert!(w[1].hbm_access_fraction >= w[0].hbm_access_fraction - 1e-12);
        }
    }

    #[test]
    fn step_zero_uses_no_hbm() {
        let m = build_one();
        assert_eq!(m.min_option().hbm_rows, 0);
        assert_eq!(m.min_option().hbm_bytes, 0);
        assert_eq!(m.min_option().hbm_access_fraction, 0.0);
    }

    #[test]
    fn hbm_plus_uvm_bytes_cover_the_table() {
        let m = build_one();
        for o in &m.options {
            assert_eq!(o.hbm_bytes + o.uvm_bytes, m.total_rows * m.row_bytes);
        }
    }

    #[test]
    fn ablation_switches_change_costs() {
        let model = ModelSpec::small(3, 6);
        let profile = DatasetProfiler::profile_model(&model, 3_000, 2);
        let device = DeviceClass::new("gpu", 1 << 30, 1 << 34, 1555.0, 16.0);
        let p = &profile.profiles()[0];
        let full = TableCostModel::build(0, p, &device, 256, &RecShardConfig::default());
        let no_pool = RecShardConfig {
            use_pooling: false,
            ..RecShardConfig::default()
        };
        let ablated = TableCostModel::build(0, p, &device, 256, &no_pool);
        if p.avg_pooling > 1.5 {
            assert!(ablated.min_option().weighted_cost < full.min_option().weighted_cost);
        }
    }
}
