//! Property-based tests for the RecShard structured solver: capacity safety,
//! plan validity and sensible behaviour across random models and systems.

use proptest::prelude::*;
use recshard::{RecShard, RecShardConfig, StructuredSolver};
use recshard_data::ModelSpec;
use recshard_sharding::SystemSpec;
use recshard_stats::DatasetProfiler;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whenever the solver returns a plan it is structurally valid, within
    /// per-GPU capacities, and covers every table exactly once.
    #[test]
    fn plans_are_always_capacity_safe(
        n_tables in 2usize..14,
        seed in 0u64..500,
        gpus in 1usize..5,
        hbm_denominator in 1u64..16,
        dram_multiplier in 1u64..4,
    ) {
        let model = ModelSpec::small(n_tables, seed);
        let profile = DatasetProfiler::profile_model(&model, 400, seed ^ 0xBEEF);
        let system = SystemSpec::uniform(
            gpus,
            (model.total_bytes() / (gpus as u64 * hbm_denominator)).max(1),
            model.total_bytes() * dram_multiplier,
            1555.0,
            16.0,
        );
        match RecShard::new(RecShardConfig::default()).plan(&model, &profile, &system) {
            Ok(plan) => {
                prop_assert!(plan.validate(&model, &system).is_ok());
                prop_assert_eq!(plan.placements().len(), model.num_features());
                // Hot-row budget never exceeds the table.
                for p in plan.placements() {
                    prop_assert!(p.hbm_rows <= p.total_rows);
                }
            }
            Err(_) => {
                // Rejection is only acceptable when the model genuinely does
                // not fit the system.
                prop_assert!(model.total_bytes() > system.total_capacity() / 2);
            }
        }
    }

    /// The solver's own objective never improves when HBM shrinks (with DRAM
    /// held constant): less fast memory can only hurt.
    #[test]
    fn objective_monotone_in_hbm_capacity(n_tables in 3usize..10, seed in 0u64..300) {
        let model = ModelSpec::small(n_tables, seed);
        let profile = DatasetProfiler::profile_model(&model, 500, seed);
        let solver = StructuredSolver::new(RecShardConfig::default());
        let mut prev = 0.0f64;
        for denom in [1u64, 3, 6, 12] {
            let system = SystemSpec::uniform(
                2,
                (model.total_bytes() / denom).max(1),
                model.total_bytes() * 2,
                1555.0,
                16.0,
            );
            let plan = solver.solve(&model, &profile, &system).unwrap();
            let obj = solver
                .gpu_costs(&model, &profile, &system, &plan)
                .into_iter()
                .fold(0.0f64, f64::max);
            prop_assert!(obj + 1e-9 >= prev, "objective fell from {prev} to {obj} as HBM shrank");
            prev = obj;
        }
    }

    /// Remap tables produced by the pipeline cover each table exactly and
    /// agree with the plan's split sizes.
    #[test]
    fn pipeline_remaps_match_plan(n_tables in 2usize..8, seed in 0u64..200) {
        let model = ModelSpec::small(n_tables, seed);
        let system = SystemSpec::uniform(
            2,
            (model.total_bytes() / 5).max(1),
            model.total_bytes() * 2,
            1555.0,
            16.0,
        );
        if let Ok(out) = RecShard::default().run(&model, &system, 400, seed) {
            for (remap, placement) in out.remap_tables.iter().zip(out.plan.placements()) {
                prop_assert_eq!(remap.total_rows(), placement.total_rows);
                prop_assert_eq!(remap.hbm_rows(), placement.hbm_rows);
            }
        }
    }
}
