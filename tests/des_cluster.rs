//! Integration tests of the discrete-event cluster simulator against the
//! full pipeline: RecShard's placement must beat the size-based baseline on
//! tail latency for a skewed Zipf workload under identical event streams.

use recshard::{RecShard, RecShardConfig};
use recshard_bench::{skewed_model, Strategy};
use recshard_des::{ArrivalProcess, ClusterConfig, ClusterSimulator};
use recshard_sharding::SystemSpec;
use recshard_stats::DatasetProfiler;

/// Skewed workload, tight HBM, identical arrival streams: RecShard's hot-row
/// placement must win on p99 sojourn time against the size-based baseline.
#[test]
fn recshard_beats_size_based_on_p99_for_skewed_workload() {
    let model = skewed_model(24);
    let system = SystemSpec::uniform(
        4,
        model.total_bytes() / 12, // cluster HBM holds ~1/3 of the model
        model.total_bytes(),
        1555.0,
        16.0,
    );
    let profile = DatasetProfiler::profile_model(&model, 3_000, 11);

    // Calibrate arrivals so the RecShard plan has ~10% headroom.
    let base = ClusterConfig {
        batch_size: 32,
        iterations: 1_500,
        seed: 0x11,
        scale_to_batch: Some(model.batch_size()),
        arrival: ArrivalProcess::FixedRate { interval_ms: 1e9 },
        ..ClusterConfig::default()
    };
    let recshard_plan = Strategy::RecShard.plan(&model, &profile, &system);
    let calib = ClusterSimulator::new(
        &model,
        &recshard_plan,
        &profile,
        &system,
        ClusterConfig {
            iterations: 100,
            ..base
        },
    )
    .run();
    let config = ClusterConfig {
        arrival: ArrivalProcess::FixedRate {
            interval_ms: calib.p50_ms * 1.1,
        },
        ..base
    };

    let recshard = ClusterSimulator::new(&model, &recshard_plan, &profile, &system, config).run();
    let size_plan = Strategy::SizeBased.plan(&model, &profile, &system);
    let size_based = ClusterSimulator::new(&model, &size_plan, &profile, &system, config).run();

    assert_eq!(recshard.completed, 1_500);
    assert_eq!(size_based.completed, 1_500);
    assert!(
        recshard.p99_ms < size_based.p99_ms,
        "RecShard p99 {} ms must beat size-based p99 {} ms on a skewed workload",
        recshard.p99_ms,
        size_based.p99_ms
    );
    assert!(
        recshard.throughput_iters_per_s >= size_based.throughput_iters_per_s,
        "RecShard must sustain at least the baseline's throughput"
    );
}

/// The `RecShard::simulate_cluster` pipeline entry point is deterministic and
/// consistent with driving the simulator directly.
#[test]
fn pipeline_entry_point_matches_direct_simulator() {
    let model = skewed_model(12);
    let system = SystemSpec::uniform(
        2,
        model.total_bytes() / 6,
        model.total_bytes(),
        1555.0,
        16.0,
    );
    let profile = DatasetProfiler::profile_model(&model, 1_500, 3);
    let config = ClusterConfig {
        iterations: 200,
        batch_size: 32,
        ..ClusterConfig::default()
    };

    let sharder = RecShard::new(RecShardConfig::default());
    let via_pipeline = sharder
        .simulate_cluster(&model, &profile, &system, config)
        .unwrap();
    let plan = sharder.plan(&model, &profile, &system).unwrap();
    let direct = ClusterSimulator::new(&model, &plan, &profile, &system, config).run();
    assert_eq!(via_pipeline, direct);
}

/// Re-sharding mid-run keeps the simulation consistent: every iteration
/// completes and the summary stays deterministic.
#[test]
fn online_resharding_is_deterministic() {
    use recshard_des::{DriftSchedule, ReshardPolicy};
    let model = skewed_model(12);
    let system = SystemSpec::uniform(
        2,
        model.total_bytes() / 6,
        model.total_bytes(),
        1555.0,
        16.0,
    );
    let profile = DatasetProfiler::profile_model(&model, 1_500, 5);
    let config = ClusterConfig {
        iterations: 400,
        batch_size: 32,
        ..ClusterConfig::default()
    };
    let drift = DriftSchedule::paper_like(50);
    let policy = ReshardPolicy {
        check_every_iterations: 100,
        imbalance_threshold: 1.05,
        ..ReshardPolicy::default()
    };
    let sharder = RecShard::new(RecShardConfig::default());
    let run = || {
        sharder
            .simulate_cluster_with_resharding(
                &model,
                &profile,
                &system,
                config,
                drift.clone(),
                policy,
            )
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
    assert_eq!(a.completed, 400);
}
