//! CLI for `recshard-lint`. See `--help`.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use recshard_lint::diag::{render_human, render_json, Baseline};
use recshard_lint::{rules, scan};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
recshard-lint — workspace determinism & robustness static analysis

USAGE:
    cargo run -p recshard-lint -- [OPTIONS]

OPTIONS:
    --check              Exit non-zero on violations beyond the committed
                         baseline, or on stale baseline entries.
    --update-baseline    Rewrite lint-baseline.txt from the current scan.
    --json <PATH>        Also write the diagnostics report as JSON.
    --root <DIR>         Workspace root (default: auto-detected from the
                         manifest dir, else the current directory).
    --list-rules         Print the rule table and exit.
    --help               This text.
";

struct Options {
    check: bool,
    update_baseline: bool,
    json: Option<PathBuf>,
    root: Option<PathBuf>,
    list_rules: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        check: false,
        update_baseline: false,
        json: None,
        root: None,
        list_rules: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => opts.check = true,
            "--update-baseline" => opts.update_baseline = true,
            "--json" => {
                let p = args.next().ok_or("--json needs a path")?;
                opts.json = Some(PathBuf::from(p));
            }
            "--root" => {
                let p = args.next().ok_or("--root needs a directory")?;
                opts.root = Some(PathBuf::from(p));
            }
            "--list-rules" => opts.list_rules = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`\n\n{USAGE}")),
        }
    }
    Ok(opts)
}

/// The workspace root: `--root`, else two levels up from this crate's
/// manifest (crates/lint → workspace), else the current directory.
fn workspace_root(opts: &Options) -> PathBuf {
    if let Some(r) = &opts.root {
        return r.clone();
    }
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(|p| p.to_path_buf())
        .unwrap_or_else(|| PathBuf::from("."))
}

fn list_rules() {
    println!("{:<16} {:<6} SUMMARY", "RULE", "TESTS");
    for r in rules::RULES {
        println!(
            "{:<16} {:<6} {}",
            r.name,
            if r.include_tests { "yes" } else { "no" },
            r.summary
        );
        println!("{:16} {:6} invariant: {}", "", "", r.invariant);
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if opts.list_rules {
        list_rules();
        return ExitCode::SUCCESS;
    }
    let root = workspace_root(&opts);

    if opts.update_baseline {
        let diags = match scan::scan_workspace(&root) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        };
        let text = Baseline::render(&diags);
        let path = root.join(scan::BASELINE_FILE);
        if let Err(e) = std::fs::write(&path, &text) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "wrote {} ({} grandfathered violation{})",
            path.display(),
            diags.len(),
            if diags.len() == 1 { "" } else { "s" }
        );
        return ExitCode::SUCCESS;
    }

    let report = match scan::check(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(json_path) = &opts.json {
        let json = render_json(&report.new, &report.baselined, &report.stale);
        if let Err(e) = std::fs::write(json_path, json) {
            eprintln!("error: cannot write {}: {e}", json_path.display());
            return ExitCode::from(2);
        }
    }

    for d in &report.new {
        println!("{}", render_human(d));
    }
    for s in &report.stale {
        println!("stale baseline entry: {s}");
    }
    if !opts.check {
        // Informational mode: show the grandfathered tail too.
        for d in &report.baselined {
            println!("[baselined] {}", render_human(d));
        }
    }
    println!(
        "recshard-lint: {} new, {} baselined, {} stale baseline entr{}",
        report.new.len(),
        report.baselined.len(),
        report.stale.len(),
        if report.stale.len() == 1 { "y" } else { "ies" }
    );

    if opts.check && !report.ok() {
        eprintln!(
            "recshard-lint --check failed: fix the violations, annotate them with \
             `// recshard-lint: allow(rule) -- reason`, or (for deliberate ratchets) \
             regenerate the baseline with --update-baseline"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
