//! Access-frequency CDFs and their piece-wise linear inverse (ICDF).
//!
//! Figure 5 of the paper plots, per feature, the cumulative fraction of all
//! table accesses covered by the hottest fraction of rows. RecShard's MILP
//! uses the *inverse* of that CDF — "how many rows do I need in HBM to cover
//! X% of accesses" — approximated by 100 uniformly spaced steps
//! (Section 4.2, constraints 4–7).

use crate::freq::FrequencyMap;
use serde::{Deserialize, Serialize};

/// Cumulative distribution of accesses over ranked rows for one table.
///
/// Rows are ranked hottest-first; `cdf.access_fraction(k)` is the fraction of
/// all accesses covered by the `k` hottest rows. Rows never accessed during
/// profiling are not part of the ranking (their cumulative contribution is
/// zero), so `rows_ranked() <= hash_size`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccessCdf {
    /// Cumulative access counts: `cumulative[i]` = accesses covered by the
    /// `i + 1` hottest rows.
    cumulative: Vec<u64>,
    total: u64,
}

impl AccessCdf {
    /// Builds the CDF from a per-row frequency map.
    pub fn from_frequency(freq: &FrequencyMap) -> Self {
        let counts = freq.ranked_counts();
        let mut cumulative = Vec::with_capacity(counts.len());
        let mut running = 0u64;
        for c in counts {
            running += c;
            cumulative.push(running);
        }
        Self {
            cumulative,
            total: freq.total_accesses(),
        }
    }

    /// Builds a CDF directly from descending per-row access counts.
    ///
    /// # Panics
    ///
    /// Panics if the counts are not sorted in descending order.
    pub fn from_ranked_counts(counts: &[u64]) -> Self {
        assert!(
            counts.windows(2).all(|w| w[0] >= w[1]),
            "ranked counts must be descending"
        );
        let mut cumulative = Vec::with_capacity(counts.len());
        let mut running = 0u64;
        for &c in counts {
            running += c;
            cumulative.push(running);
        }
        Self {
            total: running,
            cumulative,
        }
    }

    /// A degenerate CDF for a table that was never accessed during profiling.
    pub fn empty() -> Self {
        Self {
            cumulative: Vec::new(),
            total: 0,
        }
    }

    /// Total number of profiled accesses.
    pub fn total_accesses(&self) -> u64 {
        self.total
    }

    /// Number of distinct rows that received at least one access.
    pub fn rows_ranked(&self) -> u64 {
        self.cumulative.len() as u64
    }

    /// Fraction of accesses covered by the `rows` hottest rows (in `[0, 1]`).
    pub fn access_fraction(&self, rows: u64) -> f64 {
        if self.total == 0 || rows == 0 {
            return 0.0;
        }
        let idx = (rows.min(self.cumulative.len() as u64) - 1) as usize;
        self.cumulative[idx] as f64 / self.total as f64
    }

    /// Minimum number of hottest rows needed to cover at least `fraction` of
    /// all accesses. `fraction` is clamped to `[0, 1]`.
    pub fn rows_for_access_fraction(&self, fraction: f64) -> u64 {
        let fraction = fraction.clamp(0.0, 1.0);
        if self.total == 0 || fraction == 0.0 {
            return 0;
        }
        let target = (fraction * self.total as f64).ceil() as u64;
        // Binary search for the first cumulative count >= target.
        match self.cumulative.binary_search_by(|&c| {
            if c < target {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Greater
            }
        }) {
            Ok(i) | Err(i) => (i as u64 + 1).min(self.cumulative.len() as u64),
        }
    }

    /// The piece-wise linear inverse CDF used by the MILP: `steps + 1` points,
    /// where point `i` is the number of rows needed to cover `i / steps` of
    /// all accesses (Section 4.2 uses `steps = 100`).
    pub fn icdf(&self, steps: usize) -> Icdf {
        assert!(steps >= 1, "ICDF needs at least one step");
        let rows = (0..=steps)
            .map(|i| self.rows_for_access_fraction(i as f64 / steps as f64))
            .collect();
        Icdf { rows }
    }

    /// Rank of the CDF's *knee*: the number of hottest rows at which the
    /// curve's vertical distance above the uniform diagonal is maximal.
    ///
    /// Geometrically this is the point where adding more rows stops paying
    /// more than proportionally — the natural boundary between the "head"
    /// a serving cache should pin in HBM and the tail it should manage
    /// dynamically. For a perfectly uniform table the distance is ~0
    /// everywhere and the returned rank is the first index attaining the
    /// (degenerate) maximum, so near-uniform tables pin almost nothing.
    ///
    /// Returns 0 for an empty CDF.
    pub fn knee_rank(&self) -> u64 {
        if self.cumulative.is_empty() || self.total == 0 {
            return 0;
        }
        let n = self.cumulative.len() as f64;
        let total = self.total as f64;
        let mut best = 0usize;
        let mut best_gap = f64::NEG_INFINITY;
        for (i, &c) in self.cumulative.iter().enumerate() {
            let gap = c as f64 / total - (i + 1) as f64 / n;
            if gap > best_gap {
                best_gap = gap;
                best = i;
            }
        }
        (best + 1) as u64
    }

    /// Gini-style skew indicator: fraction of accesses covered by the top 1%
    /// of *accessed* rows. Close to 0.01 for uniform access, close to 1.0 for
    /// extremely skewed tables.
    pub fn top_percent_share(&self, percent: f64) -> f64 {
        if self.cumulative.is_empty() {
            return 0.0;
        }
        let rows = ((self.cumulative.len() as f64) * percent / 100.0)
            .ceil()
            .max(1.0) as u64;
        self.access_fraction(rows)
    }

    /// Normalised CDF points `(row_fraction, access_fraction)` for plotting
    /// (Figure 5). Produces at most `max_points` points.
    pub fn curve(&self, max_points: usize) -> Vec<(f64, f64)> {
        if self.cumulative.is_empty() {
            return vec![(0.0, 0.0)];
        }
        let n = self.cumulative.len();
        let step = (n / max_points.max(1)).max(1);
        let mut pts = Vec::new();
        pts.push((0.0, 0.0));
        let mut i = step - 1;
        while i < n {
            pts.push((
                (i + 1) as f64 / n as f64,
                self.cumulative[i] as f64 / self.total as f64,
            ));
            i += step;
        }
        if pts.last().map(|p| p.0) != Some(1.0) {
            pts.push((1.0, 1.0));
        }
        pts
    }
}

/// Piece-wise linear inverse CDF: maps an access-percentage step to the
/// number of rows required (the paper's `ICDF_j(i)` in constraint 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Icdf {
    rows: Vec<u64>,
}

impl Icdf {
    /// Number of steps (the paper uses 100, giving 101 points).
    pub fn steps(&self) -> usize {
        self.rows.len() - 1
    }

    /// Number of rows needed to reach step `i` (access fraction `i / steps`).
    ///
    /// # Panics
    ///
    /// Panics if `i > steps`.
    pub fn rows_at_step(&self, i: usize) -> u64 {
        self.rows[i]
    }

    /// The access fraction corresponding to step `i`.
    pub fn fraction_at_step(&self, i: usize) -> f64 {
        i as f64 / self.steps() as f64
    }

    /// All `(fraction, rows)` points.
    pub fn points(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let steps = self.steps();
        self.rows
            .iter()
            .enumerate()
            .map(move |(i, &r)| (i as f64 / steps as f64, r))
    }

    /// Maximum number of rows (the rows needed for 100% access coverage —
    /// i.e. every row that was ever accessed).
    pub fn max_rows(&self) -> u64 {
        *self.rows.last().expect("ICDF has at least one point")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed_freq() -> FrequencyMap {
        // Row 0: 1000 accesses, rows 1..=9: 10 each, rows 10..=109: 1 each.
        let mut f = FrequencyMap::new();
        f.record_n(0, 1000);
        for r in 1..=9u64 {
            f.record_n(r, 10);
        }
        for r in 10..110u64 {
            f.record_n(r, 1);
        }
        f
    }

    #[test]
    fn cdf_monotone_and_normalised() {
        let cdf = AccessCdf::from_frequency(&skewed_freq());
        let mut prev = 0.0;
        for rows in 0..=cdf.rows_ranked() {
            let f = cdf.access_fraction(rows);
            assert!(f >= prev - 1e-12);
            assert!((0.0..=1.0).contains(&f));
            prev = f;
        }
        assert!((cdf.access_fraction(cdf.rows_ranked()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skew_concentrates_in_head() {
        let cdf = AccessCdf::from_frequency(&skewed_freq());
        // One row out of 110 covers 1000/1190 ≈ 84% of accesses.
        assert!(cdf.access_fraction(1) > 0.8);
        assert!(cdf.top_percent_share(1.0) > 0.8);
    }

    #[test]
    fn rows_for_fraction_inverts_access_fraction() {
        let cdf = AccessCdf::from_frequency(&skewed_freq());
        for pct in [0.0, 0.1, 0.5, 0.84, 0.9, 0.99, 1.0] {
            let rows = cdf.rows_for_access_fraction(pct);
            assert!(
                cdf.access_fraction(rows) + 1e-12 >= pct,
                "pct {pct} rows {rows}"
            );
            if rows > 0 {
                assert!(cdf.access_fraction(rows - 1) < pct + 1e-12);
            }
        }
    }

    #[test]
    fn icdf_monotone_and_covers_all_rows_at_last_step() {
        let cdf = AccessCdf::from_frequency(&skewed_freq());
        let icdf = cdf.icdf(100);
        assert_eq!(icdf.steps(), 100);
        let rows: Vec<u64> = icdf.points().map(|(_, r)| r).collect();
        assert!(rows.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(icdf.max_rows(), cdf.rows_ranked());
        assert_eq!(icdf.rows_at_step(0), 0);
    }

    #[test]
    fn uniform_distribution_needs_proportional_rows() {
        let mut f = FrequencyMap::new();
        for r in 0..1000u64 {
            f.record_n(r, 5);
        }
        let cdf = AccessCdf::from_frequency(&f);
        let half = cdf.rows_for_access_fraction(0.5);
        assert!((half as f64 - 500.0).abs() <= 1.0);
        assert!(cdf.top_percent_share(10.0) < 0.12);
    }

    #[test]
    fn knee_separates_head_from_tail_on_skewed_cdf() {
        let cdf = AccessCdf::from_frequency(&skewed_freq());
        let knee = cdf.knee_rank();
        // The single 1000-access row dominates; the knee must sit in the
        // small head, and the head it selects must cover most accesses.
        assert!((1..=10).contains(&knee), "knee {knee} outside the head");
        assert!(cdf.access_fraction(knee) > 0.8);
    }

    #[test]
    fn knee_is_small_for_uniform_cdf() {
        let mut f = FrequencyMap::new();
        for r in 0..500u64 {
            f.record_n(r, 3);
        }
        let cdf = AccessCdf::from_frequency(&f);
        let knee = cdf.knee_rank();
        // Uniform access has no knee: the degenerate maximum lands on the
        // first rank, so a stat-guided cache pins (almost) nothing.
        assert!(knee <= 1, "uniform CDF produced knee {knee}");
        assert_eq!(AccessCdf::empty().knee_rank(), 0);
    }

    #[test]
    fn empty_cdf_behaves() {
        let cdf = AccessCdf::empty();
        assert_eq!(cdf.access_fraction(10), 0.0);
        assert_eq!(cdf.rows_for_access_fraction(0.9), 0);
        assert_eq!(cdf.icdf(10).max_rows(), 0);
        assert_eq!(cdf.curve(10), vec![(0.0, 0.0)]);
    }

    #[test]
    fn from_ranked_counts_matches_frequency_path() {
        let freq = skewed_freq();
        let a = AccessCdf::from_frequency(&freq);
        let b = AccessCdf::from_ranked_counts(&freq.ranked_counts());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "ranked counts must be descending")]
    fn unsorted_counts_rejected() {
        let _ = AccessCdf::from_ranked_counts(&[1, 5, 2]);
    }

    #[test]
    fn curve_is_bounded_and_ends_at_one() {
        let cdf = AccessCdf::from_frequency(&skewed_freq());
        let curve = cdf.curve(20);
        assert!(curve.len() <= 23);
        assert_eq!(*curve.first().unwrap(), (0.0, 0.0));
        let last = curve.last().unwrap();
        assert!((last.0 - 1.0).abs() < 1e-12 && (last.1 - 1.0).abs() < 1e-12);
    }
}
