//! Section 6.4: Amdahl's-law estimate of the end-to-end training speedup for
//! different embedding-time shares and embedding speedups, plus the solver
//! and remapping overheads of Section 6.6.

#![allow(clippy::print_stdout)]
use recshard::analysis::amdahl_end_to_end_speedup;
use recshard::{RecShard, RecShardConfig};
use recshard_bench::ExperimentConfig;
use recshard_data::RmKind;
use std::time::Instant;

fn main() {
    println!("# Section 6.4: expected end-to-end speedup (Amdahl's law)");
    println!("| embedding share of runtime | 2.5x EMB speedup | 5x | 7.4x |");
    println!("|----------------------------|------------------|----|------|");
    for p in [0.35, 0.5, 0.65, 0.75] {
        println!(
            "| {:.0}% | {:.2}x | {:.2}x | {:.2}x |",
            p * 100.0,
            amdahl_end_to_end_speedup(p, 2.5),
            amdahl_end_to_end_speedup(p, 5.0),
            amdahl_end_to_end_speedup(p, 7.4)
        );
    }
    println!();
    println!(
        "The paper quotes 1.27x–1.82x end-to-end for models spending 35–75% of their time in \
         embedding operations at a 2.5x embedding speedup."
    );

    // Section 6.6 overhead: solver time and remapping storage at experiment scale.
    println!();
    println!("# Section 6.6: RecShard overhead (at experiment scale)");
    let cfg = ExperimentConfig::from_env();
    println!("| model | solve time | remap storage | remap storage (paper scale) |");
    println!("|-------|------------|---------------|------------------------------|");
    for kind in [RmKind::Rm1, RmKind::Rm2, RmKind::Rm3] {
        let model = cfg.model(kind);
        let system = cfg.system();
        // recshard-lint: allow(wall-clock) -- this bin's whole purpose is the
        // human-readable overhead table; wall time never reaches BENCH_*.json.
        let start = Instant::now();
        let out = RecShard::new(RecShardConfig::default())
            .run(&model, &system, cfg.profile_samples, cfg.seed)
            .expect("pipeline");
        let elapsed = start.elapsed();
        let remap_bytes = out.remap_storage_bytes();
        println!(
            "| {} | {:.2?} (incl. profiling) | {:.1} MB | ~{:.1} GB |",
            kind,
            elapsed,
            remap_bytes as f64 / 1e6,
            (remap_bytes * cfg.scale) as f64 / 1e9
        );
    }
    println!();
    println!(
        "Paper reference: Gurobi solves the full MILP in under a minute and the remapping tables \
         cost 4 bytes per row (~20 GB for RM3's 5 billion rows) — negligible next to multi-day \
         training runs."
    );
}
