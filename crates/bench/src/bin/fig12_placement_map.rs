//! Figure 12: the partitions and placements RecShard makes for RM2 —
//! per-EMB fraction placed on UVM, grouped by owning GPU.

#![allow(clippy::print_stdout)]
use recshard_bench::{compare_strategies, ExperimentConfig, Strategy};
use recshard_data::RmKind;

fn main() {
    let cfg = ExperimentConfig::from_env();
    let cmp = compare_strategies(RmKind::Rm2, &cfg);
    let plan = &cmp.result(Strategy::RecShard).1;

    println!(
        "# Figure 12: RecShard partitions/placements for RM2 on {} GPUs",
        plan.num_gpus()
    );
    println!("| GPU | tables assigned | mean % of EMB on UVM | min % | max % |");
    println!("|-----|-----------------|----------------------|-------|-------|");
    for gpu in 0..plan.num_gpus() {
        let tables = plan.tables_on_gpu(gpu);
        if tables.is_empty() {
            println!("| {gpu} | 0 | - | - | - |");
            continue;
        }
        let fracs: Vec<f64> = tables
            .iter()
            .map(|&t| plan.placement(t).uvm_fraction() * 100.0)
            .collect();
        let mean = fracs.iter().sum::<f64>() / fracs.len() as f64;
        let min = fracs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = fracs.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "| {gpu} | {} | {:.1}% | {:.1}% | {:.1}% |",
            tables.len(),
            mean,
            min,
            max
        );
    }
    println!();
    println!("Per-EMB UVM fractions (one value per table, ordered by feature id):");
    let fracs: Vec<String> = plan
        .placements()
        .iter()
        .map(|p| format!("{:.0}", p.uvm_fraction() * 100.0))
        .collect();
    println!("{}", fracs.join(" "));
    println!();
    println!(
        "Mean % of rows per EMB on UVM: {:.1}%; total rows on UVM: {:.1}% — the paper reports \
         53.4% per-EMB average and 61% of all rows for RM2. As in Figure 12, the number of EMBs \
         per GPU varies and every bar height (per-EMB UVM fraction) is table-specific.",
        plan.mean_table_uvm_fraction() * 100.0,
        plan.uvm_row_fraction() * 100.0
    );
}
