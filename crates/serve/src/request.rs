//! The batched inference request front-end.
//!
//! Online queries look like training samples without labels: a batch of
//! users/items, each contributing multi-hot sparse features. The stream is
//! produced by the *same* coverage/pooling/Zipf machinery the rest of the
//! reproduction uses ([`SampleGenerator`]), hashed by the same per-table
//! hashers, and routed to GPU shards by the active sharding plan — so the
//! serving layer sees exactly the access skew the profile measured.
//!
//! Generation is fully seeded: a `(model, seed, arrival, batch, count)`
//! tuple always produces the identical stream, which is what makes serving
//! runs fingerprint-stable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use recshard_data::{ModelSpec, SampleGenerator, ScenarioSpec};
use serde::{Deserialize, Serialize};

/// Salt mixed into the stream seed when a scenario shift re-derives the
/// sample generator, so each applied-shift count gets an independent but
/// fully seeded continuation of the stream.
const SHIFT_SEED_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// How inference requests arrive at the server (open loop).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalModel {
    /// One request every `interval_us` microseconds, exactly.
    FixedRate {
        /// Gap between consecutive requests, in microseconds.
        interval_us: f64,
    },
    /// Poisson arrivals with exponentially distributed gaps.
    Poisson {
        /// Mean gap between consecutive requests, in microseconds.
        mean_interval_us: f64,
    },
}

impl ArrivalModel {
    /// Draws the gap to the next arrival, in nanoseconds.
    pub fn next_gap_ns(&self, rng: &mut StdRng) -> u64 {
        match *self {
            ArrivalModel::FixedRate { interval_us } => (interval_us.max(0.0) * 1e3).round() as u64,
            ArrivalModel::Poisson { mean_interval_us } => {
                let u: f64 = rng.gen();
                let gap_us = -mean_interval_us.max(0.0) * (1.0 - u).ln();
                (gap_us * 1e3).round() as u64
            }
        }
    }

    /// The mean arrival interval in microseconds.
    pub fn mean_interval_us(&self) -> f64 {
        match *self {
            ArrivalModel::FixedRate { interval_us } => interval_us,
            ArrivalModel::Poisson { mean_interval_us } => mean_interval_us,
        }
    }
}

/// One shard's slice of one query: the hashed rows this GPU must gather.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardTask {
    /// Index of the query this task belongs to.
    pub query: u32,
    /// `(table, hashed row)` lookups, in draw order.
    pub lookups: Vec<(u32, u64)>,
}

/// A scenario phase transition observed while materialising a stream:
/// the first arrival at or after a rate-curve boundary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseChange {
    /// Arrival time at which the new phase was first observed, in ns.
    pub at_ns: u64,
    /// Phase index (count of boundaries crossed so far).
    pub phase: u32,
    /// The scenario's rate multiplier at that instant.
    pub rate_multiplier: f64,
    /// Distribution shifts applied up to and including that instant.
    pub shifts_applied: u64,
}

/// A fully materialised, seeded request stream, pre-partitioned per shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestStream {
    /// Arrival time of each query, in nanoseconds (non-decreasing).
    pub arrivals_ns: Vec<u64>,
    /// Per shard, the tasks in query order.
    pub shard_tasks: Vec<Vec<ShardTask>>,
    /// Total row lookups across all queries and shards.
    pub total_lookups: u64,
}

impl RequestStream {
    /// Generates `queries` batched requests of `batch` samples each, routing
    /// every table's lookups to its owning shard (`gpu_of`).
    ///
    /// # Panics
    ///
    /// Panics if `gpu_of` disagrees with the model's feature count, routes to
    /// an out-of-range shard, or `batch == 0`.
    pub fn generate(
        model: &ModelSpec,
        gpu_of: &[usize],
        num_shards: usize,
        queries: u32,
        batch: usize,
        arrival: ArrivalModel,
        seed: u64,
    ) -> Self {
        Self::generate_impl(
            model, gpu_of, num_shards, queries, batch, arrival, seed, None,
        )
        .0
    }

    /// Like [`generate`](Self::generate), but modulated by a scenario: gaps
    /// are scaled by the spec's rate curves at each arrival's virtual time,
    /// and distribution shifts re-derive the hashers and sample generator
    /// from [`ScenarioSpec::model_after`] the moment they fall due. Returns
    /// the phase transitions alongside the stream so callers can trace them.
    ///
    /// A stationary scenario reproduces [`generate`](Self::generate)
    /// bit-for-bit.
    ///
    /// # Panics
    ///
    /// As [`generate`](Self::generate), plus if the spec fails
    /// [`ScenarioSpec::validate`].
    #[allow(clippy::too_many_arguments)]
    pub fn generate_scenario(
        model: &ModelSpec,
        gpu_of: &[usize],
        num_shards: usize,
        queries: u32,
        batch: usize,
        arrival: ArrivalModel,
        seed: u64,
        scenario: &ScenarioSpec,
    ) -> (Self, Vec<PhaseChange>) {
        if let Err(e) = scenario.validate() {
            panic!("invalid scenario spec: {e}");
        }
        Self::generate_impl(
            model,
            gpu_of,
            num_shards,
            queries,
            batch,
            arrival,
            seed,
            Some(scenario),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn generate_impl(
        model: &ModelSpec,
        gpu_of: &[usize],
        num_shards: usize,
        queries: u32,
        batch: usize,
        arrival: ArrivalModel,
        seed: u64,
        scenario: Option<&ScenarioSpec>,
    ) -> (Self, Vec<PhaseChange>) {
        assert_eq!(gpu_of.len(), model.num_features(), "routing/model mismatch");
        assert!(batch > 0, "a query must contain at least one sample");
        assert!(
            gpu_of.iter().all(|&g| g < num_shards),
            "routing targets an out-of-range shard"
        );
        let mut hashers: Vec<_> = model.features().iter().map(|f| f.hasher()).collect();
        let mut gen = SampleGenerator::new(model, seed);
        let mut arrival_rng = StdRng::seed_from_u64(seed ^ 0x5E2E_A221_7A1C_0FFE);
        let boundaries = scenario.map(|s| s.boundaries_ns()).unwrap_or_default();
        let mut applied = 0usize;
        let mut phase = 0u32;
        let mut phase_changes = Vec::new();

        let mut arrivals_ns = Vec::with_capacity(queries as usize);
        let mut shard_tasks: Vec<Vec<ShardTask>> = vec![Vec::new(); num_shards];
        let mut total_lookups = 0u64;
        let mut now = 0u64;
        let mut per_shard: Vec<Vec<(u32, u64)>> = vec![Vec::new(); num_shards];
        for q in 0..queries {
            arrivals_ns.push(now);
            if let Some(spec) = scenario {
                // Shifts due at or before this arrival rebuild the sampling
                // state; the shifted stream stays fully seeded because the
                // generator seed is derived from (seed, applied).
                let due = spec.shifts_due(now);
                if due > applied {
                    applied = due;
                    let shifted = spec.model_after(model, applied);
                    hashers = shifted.features().iter().map(|f| f.hasher()).collect();
                    gen = SampleGenerator::new(
                        &shifted,
                        seed ^ (applied as u64).wrapping_mul(SHIFT_SEED_SALT),
                    );
                }
                let now_phase = boundaries.iter().filter(|&&b| b <= now).count() as u32;
                if now_phase > phase {
                    phase = now_phase;
                    phase_changes.push(PhaseChange {
                        at_ns: now,
                        phase,
                        rate_multiplier: spec.rate_multiplier(now),
                        shifts_applied: applied as u64,
                    });
                }
            }
            let mut gap = arrival.next_gap_ns(&mut arrival_rng);
            if let Some(spec) = scenario {
                gap = spec.scaled_gap_ns(gap, now);
            }
            now += gap;
            for slot in &mut per_shard {
                slot.clear();
            }
            for _ in 0..batch {
                let sample = gen.sample();
                for (t, values) in sample.values.iter().enumerate() {
                    let shard = gpu_of[t];
                    for &v in values {
                        per_shard[shard].push((t as u32, hashers[t].hash(v)));
                    }
                }
            }
            for (shard, lookups) in per_shard.iter().enumerate() {
                if !lookups.is_empty() {
                    total_lookups += lookups.len() as u64;
                    shard_tasks[shard].push(ShardTask {
                        query: q,
                        lookups: lookups.clone(),
                    });
                }
            }
        }
        (
            Self {
                arrivals_ns,
                shard_tasks,
                total_lookups,
            },
            phase_changes,
        )
    }

    /// Number of queries in the stream.
    pub fn queries(&self) -> u32 {
        self.arrivals_ns.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(seed: u64) -> (ModelSpec, RequestStream) {
        let model = ModelSpec::small(6, 4);
        let gpu_of: Vec<usize> = (0..model.num_features()).map(|t| t % 2).collect();
        let s = RequestStream::generate(
            &model,
            &gpu_of,
            2,
            50,
            4,
            ArrivalModel::FixedRate { interval_us: 10.0 },
            seed,
        );
        (model, s)
    }

    #[test]
    fn deterministic_per_seed() {
        let (_, a) = stream(7);
        let (_, b) = stream(7);
        assert_eq!(a, b);
        let (_, c) = stream(8);
        assert_ne!(a, c);
    }

    #[test]
    fn lookups_are_hashed_and_routed_to_owners() {
        let (model, s) = stream(3);
        assert_eq!(s.shard_tasks.len(), 2);
        let mut seen = 0u64;
        for (shard, tasks) in s.shard_tasks.iter().enumerate() {
            for task in tasks {
                assert!(!task.lookups.is_empty());
                for &(t, row) in &task.lookups {
                    assert_eq!(t as usize % 2, shard, "lookup on the wrong shard");
                    assert!(row < model.features()[t as usize].hash_size);
                    seen += 1;
                }
            }
        }
        assert_eq!(seen, s.total_lookups);
        assert!(seen > 0);
    }

    #[test]
    fn fixed_rate_arrivals_are_evenly_spaced() {
        let (_, s) = stream(1);
        assert_eq!(s.queries(), 50);
        for w in s.arrivals_ns.windows(2) {
            assert_eq!(w[1] - w[0], 10_000);
        }
    }

    #[test]
    fn poisson_gaps_average_the_mean() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = ArrivalModel::Poisson {
            mean_interval_us: 40.0,
        };
        let n = 20_000;
        let total: u64 = (0..n).map(|_| a.next_gap_ns(&mut rng)).sum();
        let mean_us = total as f64 / n as f64 / 1e3;
        assert!(
            (mean_us - 40.0).abs() < 2.0,
            "Poisson mean gap {mean_us} far from 40"
        );
        assert_eq!(a.mean_interval_us(), 40.0);
    }

    #[test]
    fn tasks_are_in_query_order() {
        let (_, s) = stream(11);
        for tasks in &s.shard_tasks {
            for w in tasks.windows(2) {
                assert!(w[0].query < w[1].query);
            }
        }
    }

    #[test]
    fn stationary_scenario_matches_plain_generate() {
        let (model, plain) = stream(7);
        let gpu_of: Vec<usize> = (0..model.num_features()).map(|t| t % 2).collect();
        let (s, phases) = RequestStream::generate_scenario(
            &model,
            &gpu_of,
            2,
            50,
            4,
            ArrivalModel::FixedRate { interval_us: 10.0 },
            7,
            &ScenarioSpec::stationary(),
        );
        assert_eq!(s, plain, "stationary scenario must replay bit-identically");
        assert!(phases.is_empty());
    }

    #[test]
    fn flash_crowd_compresses_gaps_and_reports_phases() {
        let model = ModelSpec::small(6, 4);
        let gpu_of: Vec<usize> = (0..model.num_features()).map(|t| t % 2).collect();
        // 200 queries at a 10 µs base gap; 2x flash from 0.5 ms to 1.0 ms.
        let spec = ScenarioSpec::flash_crowd(0.5e-3, 0.5e-3, 2.0);
        let run = || {
            RequestStream::generate_scenario(
                &model,
                &gpu_of,
                2,
                200,
                4,
                ArrivalModel::FixedRate { interval_us: 10.0 },
                7,
                &spec,
            )
        };
        let (a, pa) = run();
        let (b, pb) = run();
        assert_eq!(a, b, "scenario streams must be deterministic per seed");
        assert_eq!(pa, pb);
        assert_eq!(pa.len(), 2, "both flash boundaries must be crossed");
        assert_eq!(pa[0].phase, 1);
        assert_eq!(pa[0].rate_multiplier, 2.0);
        assert_eq!(pa[0].shifts_applied, 1, "the hot-key shift rides the flash");
        assert_eq!(pa[1].phase, 2);
        assert_eq!(pa[1].rate_multiplier, 1.0);
        // Inside the flash window the fixed 10 µs gap halves to 5 µs.
        assert_eq!(a.arrivals_ns[51] - a.arrivals_ns[50], 5_000);
        assert_eq!(a.arrivals_ns[1] - a.arrivals_ns[0], 10_000);
        assert_eq!(a.arrivals_ns[199] - a.arrivals_ns[198], 10_000);
        // The hot-key shift re-derives the sampled stream.
        let plain_long = RequestStream::generate(
            &model,
            &gpu_of,
            2,
            200,
            4,
            ArrivalModel::FixedRate { interval_us: 10.0 },
            7,
        );
        assert_ne!(a.shard_tasks, plain_long.shard_tasks);
    }
}
