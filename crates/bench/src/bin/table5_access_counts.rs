//! Table 5: average HBM and UVM row accesses per GPU per iteration for every
//! sharding strategy on RM1/RM2/RM3.

#![allow(clippy::print_stdout)]
use recshard_bench::{compare_strategies, fmt_count, ExperimentConfig, Strategy};
use recshard_data::RmKind;

fn main() {
    let cfg = ExperimentConfig::from_env();
    println!(
        "# Table 5: average HBM/UVM accesses per GPU per iteration (batch {}, scale 1/{})",
        recshard_data::model::PAPER_BATCH_SIZE,
        cfg.scale
    );
    println!("| model | location | Size-Based | Lookup-Based | Size-Based-Lookup | RecShard |");
    println!("|-------|----------|------------|--------------|-------------------|----------|");
    for kind in [RmKind::Rm1, RmKind::Rm2, RmKind::Rm3] {
        let cmp = compare_strategies(kind, &cfg);
        let get = |s: Strategy| cmp.result(s).2.clone();
        let order = [
            Strategy::SizeBased,
            Strategy::LookupBased,
            Strategy::SizeLookupBased,
            Strategy::RecShard,
        ];
        let hbm: Vec<String> = order
            .iter()
            .map(|&s| fmt_count(get(s).mean_hbm_accesses_per_gpu()))
            .collect();
        let uvm: Vec<String> = order
            .iter()
            .map(|&s| fmt_count(get(s).mean_uvm_accesses_per_gpu()))
            .collect();
        println!(
            "| {} | HBM | {} | {} | {} | {} |",
            kind, hbm[0], hbm[1], hbm[2], hbm[3]
        );
        println!(
            "| {} | UVM | {} | {} | {} | {} |",
            kind, uvm[0], uvm[1], uvm[2], uvm[3]
        );
        let uvm_frac: Vec<String> = order
            .iter()
            .map(|&s| format!("{:.2}%", get(s).uvm_access_fraction() * 100.0))
            .collect();
        println!(
            "| {} | UVM share | {} | {} | {} | {} |",
            kind, uvm_frac[0], uvm_frac[1], uvm_frac[2], uvm_frac[3]
        );
    }
    println!();
    println!(
        "Paper reference: the baselines source ~20% (RM2) and ~36% (RM3) of accesses from UVM; \
         RecShard sources only 0.2% / 0.5% — a 70–100x reduction."
    );
}
