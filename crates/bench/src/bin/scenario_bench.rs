//! Workload-scenario trajectory: seeded scenario × placement sweep emitting
//! the tracked `BENCH_scenarios.json` artifact.
//!
//! Runs the four placement strategies under the four canonical traffic
//! scenarios (stationary, diurnal, flash crowd, drift storm) through both
//! the discrete-event trainer — with the online re-sharding controller
//! attached — and the inference server, under identical seeds. Everything
//! in the JSON is a pure function of the sweep configuration and seed
//! **except** the wall-clock fields (`wall_ms`, `events_per_sec`), which
//! are only written under `RECSHARD_BENCH_TIMING=1` — otherwise a `-1`
//! sentinel keeps the artifact byte-stable, the same contract as
//! `BENCH_des.json`.
//!
//! The sweep asserts its acceptance criteria in-line: the flash crowd must
//! inflate every placement's DES p99 over its stationary run, the drift
//! storm must trigger at least one controller re-shard, and stationary
//! traffic must trigger none.
//!
//! Gates: when `RECSHARD_BENCH_BASELINE` points at a previously committed
//! `BENCH_scenarios.json`, the run fails on DES *or* serve fingerprint
//! drift on committed point keys — behavioural changes must be re-baselined
//! deliberately — unless `RECSHARD_BENCH_ALLOW_DRIFT=1` acknowledges the
//! drift as intentional, and on DES events/sec regressions beyond
//! `RECSHARD_BENCH_TOLERANCE` (default 25%) when timing is on.
//!
//! Observability export: when `RECSHARD_OBS_DIR` is set, the flash-crowd
//! RecShard point re-runs once with a collector attached and writes
//! `scenario_trace.jsonl`, `scenario_trace.chrome.json` and
//! `scenario_metrics.json` there — the trace carries the run's
//! `scenario_phase` events.
//!
//! Environment overrides: `RECSHARD_SCENARIO_ITERS`, `RECSHARD_SEED`,
//! `RECSHARD_BENCH_TIMING`, `RECSHARD_BENCH_BASELINE`,
//! `RECSHARD_BENCH_TOLERANCE`, `RECSHARD_BENCH_ALLOW_DRIFT`,
//! `RECSHARD_OBS_DIR`.

#![allow(clippy::print_stdout, clippy::print_stderr)]
use recshard_bench::report::RunReport;
use recshard_bench::scenario_bench::{
    fingerprint_drift, run_sweep, throughput_regressions, traced_smoke, ScenarioBenchConfig,
    SCENARIOS,
};

fn main() {
    let cfg = ScenarioBenchConfig::from_env();
    println!(
        "# scenario_bench: {} tables x {} GPUs, scenarios {:?} x 4 placements, \
         {} DES iterations + {} serve queries, seed {:#x}, timing {}",
        cfg.tables,
        cfg.gpus,
        SCENARIOS,
        cfg.iterations,
        cfg.serve_queries,
        cfg.seed,
        if cfg.include_timing {
            "in JSON"
        } else {
            "stdout only"
        }
    );
    let report = run_sweep(&cfg);

    // Trajectory gates against a previously committed BENCH_scenarios.json.
    // Read the baseline *before* overwriting it below.
    if let Ok(baseline_path) = std::env::var("RECSHARD_BENCH_BASELINE") {
        let tolerance = std::env::var("RECSHARD_BENCH_TOLERANCE")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(0.25);
        let baseline = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
        let allow_drift = std::env::var("RECSHARD_BENCH_ALLOW_DRIFT").as_deref() == Ok("1");
        let drifts = fingerprint_drift(&report, &baseline);
        if drifts.is_empty() {
            println!("no fingerprint drift vs {baseline_path}");
        } else if allow_drift {
            for drift in &drifts {
                println!("note (drift allowed): {drift}");
            }
        } else {
            for drift in &drifts {
                eprintln!("FINGERPRINT DRIFT: {drift}");
            }
            eprintln!(
                "fingerprints drifted from {baseline_path}; if the behaviour change is \
                 intentional, re-run with RECSHARD_BENCH_ALLOW_DRIFT=1 and commit the \
                 regenerated BENCH_scenarios.json"
            );
            std::process::exit(1);
        }
        let regressions = throughput_regressions(&report, &baseline, tolerance);
        if regressions.is_empty() {
            println!(
                "no events/sec regressions vs {baseline_path} (tolerance {:.0}%)",
                tolerance * 100.0
            );
        } else {
            for r in &regressions {
                eprintln!("THROUGHPUT REGRESSION: {r}");
            }
            std::process::exit(1);
        }
    }

    // Observability artifact export: one traced flash-crowd smoke run.
    if let Ok(dir) = std::env::var("RECSHARD_OBS_DIR") {
        let (summary, bundle) = traced_smoke(&cfg);
        std::fs::create_dir_all(&dir).expect("create RECSHARD_OBS_DIR");
        let path = |name: &str| format!("{dir}/{name}");
        std::fs::write(path("scenario_trace.jsonl"), bundle.trace.to_jsonl())
            .expect("write scenario_trace.jsonl");
        std::fs::write(path("scenario_trace.chrome.json"), bundle.trace.to_chrome())
            .expect("write scenario_trace.chrome.json");
        std::fs::write(path("scenario_metrics.json"), bundle.metrics.to_json())
            .expect("write scenario_metrics.json");
        let mut obs = RunReport::new("observability export");
        obs.push("directory", &dir)
            .push("trace records", bundle.trace.len())
            .push_fingerprint("trace fingerprint", bundle.trace.fingerprint())
            .push_fingerprint("metrics fingerprint", bundle.metrics.fingerprint())
            .push_fingerprint("event-log fingerprint", summary.fingerprint);
        print!("{obs}");
    }

    let json = report.to_json();
    std::fs::write("BENCH_scenarios.json", &json).expect("write BENCH_scenarios.json");
    println!();
    let mut summary = RunReport::new("scenario_bench");
    summary
        .push("sweep points", report.points.len())
        .push_fingerprint("report fingerprint", report.fingerprint());
    for p in &report.points {
        let key = format!("{}/{}", p.scenario, p.placement);
        summary.push(
            &key,
            format!(
                "{} reshard(s), DES p99 {:.3} ms, serve p99 {:.3} ms, fp {:#018x}",
                p.reshards, p.p99_ms, p.serve_p99_ms, p.fingerprint
            ),
        );
    }
    print!("{summary}");
    println!("wrote BENCH_scenarios.json");
}
