//! Virtual simulation time.

use serde::{Deserialize, Serialize};

/// A point in virtual time, in integer nanoseconds since simulation start.
///
/// Integer nanoseconds (rather than `f64` milliseconds) make event ordering
/// exact: two events scheduled from the same timing computation compare
/// identically on every platform, which the determinism guarantee of the
/// engine relies on.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Converts from milliseconds (saturating at zero for negative inputs).
    pub fn from_ms(ms: f64) -> Self {
        SimTime((ms.max(0.0) * 1e6).round() as u64)
    }

    /// Converts from microseconds (saturating at zero for negative inputs).
    pub fn from_us(us: f64) -> Self {
        SimTime((us.max(0.0) * 1e3).round() as u64)
    }

    /// The time as fractional milliseconds.
    pub fn as_ms(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The time as fractional seconds.
    pub fn as_secs(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Raw nanoseconds.
    pub fn as_ns(&self) -> u64 {
        self.0
    }

    /// This time advanced by `ns` nanoseconds (saturating, so an absurdly
    /// large delay pins to the far future instead of wrapping around and
    /// violating event-queue causality).
    pub fn after_ns(&self, ns: u64) -> SimTime {
        SimTime(self.0.saturating_add(ns))
    }

    /// Nanoseconds elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self` (a causality bug).
    pub fn since(&self, earlier: SimTime) -> u64 {
        self.0
            .checked_sub(earlier.0)
            .expect("SimTime::since called with a later timestamp")
    }
}

impl std::ops::Add<SimTime> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}ms", self.as_ms())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_ms(1.5);
        assert_eq!(t.as_ns(), 1_500_000);
        assert!((t.as_ms() - 1.5).abs() < 1e-12);
        assert!((SimTime::from_us(250.0).as_ms() - 0.25).abs() < 1e-12);
        assert!((SimTime(2_000_000_000).as_secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ms(1.0).after_ns(500);
        assert_eq!(t.as_ns(), 1_000_500);
        assert_eq!(t.since(SimTime::from_ms(1.0)), 500);
        assert_eq!((SimTime(3) + SimTime(4)).as_ns(), 7);
    }

    #[test]
    fn negative_ms_saturates_to_zero() {
        assert_eq!(SimTime::from_ms(-3.0), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "later timestamp")]
    fn since_panics_on_causality_violation() {
        let _ = SimTime(1).since(SimTime(2));
    }
}
