//! Scenario engine: trace-driven and composable synthetic workload
//! scenarios that modulate *both* the arrival rate and the access
//! distribution over virtual time.
//!
//! The RecShard paper's core claim is that stat-guided plans stay ahead of
//! baselines *as access distributions shift* (the 20-month drift study of
//! Section 3.5). A [`ScenarioSpec`] makes that shift a first-class input:
//! it combines
//!
//! * **rate curves** ([`RateCurve`]) — multiplicative QPS modulation over
//!   virtual time: diurnal sinusoids, flash-crowd spikes, or piecewise
//!   traces ingested from CSV ([`parse_trace_csv`]); multiple curves
//!   compose by multiplying, and
//! * **shift events** ([`ShiftEvent`]) — discrete changes to the feature
//!   universe at a virtual instant: correlated hot-key shifts (hash-seed
//!   rotations that relocate every hot row of the affected tables),
//!   drift storms (per-class pooling rescales, the paper's Figure 9
//!   mechanism compressed into an instant), and table-growth events
//!   (cardinality growth under a fixed hash size, flattening the hashed
//!   row distribution).
//!
//! Everything is a pure function of the spec and virtual time — no RNG —
//! so the same spec threaded through the discrete-event trainer and the
//! online serving layer perturbs both identically and a seeded run stays
//! bit-deterministic.

use crate::feature::{FeatureClass, FeatureSpec};
use crate::model::ModelSpec;
use serde::{Deserialize, Serialize};

/// Floor applied to the composed rate multiplier, so a pathological curve
/// stack can slow arrivals by at most 1000x instead of stalling virtual
/// time entirely.
pub const MIN_RATE_MULTIPLIER: f64 = 1e-3;

/// `true` unless `v` compares strictly greater than zero — rejects zero,
/// negatives *and* NaN in one test (validation wants all three to fail).
fn not_positive(v: f64) -> bool {
    v.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
}

/// `true` when `v` is negative or NaN — the complement of `v >= 0.0` with
/// NaN counted as invalid.
fn negative_or_nan(v: f64) -> bool {
    matches!(v.partial_cmp(&0.0), Some(std::cmp::Ordering::Less) | None)
}

/// Converts scenario seconds to the simulators' nanosecond clocks,
/// saturating instead of overflowing.
fn s_to_ns(s: f64) -> u64 {
    if not_positive(s) {
        return 0;
    }
    let ns = s * 1e9;
    if ns >= u64::MAX as f64 {
        u64::MAX
    } else {
        ns.round() as u64
    }
}

/// One breakpoint of a piecewise-constant trace curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// Virtual time of the breakpoint, seconds.
    pub t_s: f64,
    /// Rate multiplier that holds from this breakpoint until the next.
    pub rate_multiplier: f64,
}

/// A multiplicative arrival-rate modulation over virtual time. Multiple
/// curves on one [`ScenarioSpec`] compose by multiplying their values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RateCurve {
    /// Constant multiplier 1 — the identity curve.
    Stationary,
    /// A diurnal sinusoid: `1 + amplitude * sin(2π t / period_s)`.
    Diurnal {
        /// Oscillation period, seconds of virtual time.
        period_s: f64,
        /// Peak deviation from 1 (0.5 ⇒ the rate swings between 0.5x
        /// and 1.5x).
        amplitude: f64,
    },
    /// A flash crowd: the rate jumps to `magnitude` for the interval
    /// `[start_s, start_s + duration_s)` and is 1 outside it.
    FlashCrowd {
        /// Spike onset, seconds of virtual time.
        start_s: f64,
        /// Spike duration, seconds.
        duration_s: f64,
        /// Rate multiplier while the spike holds (e.g. 4.0 = 4x QPS).
        magnitude: f64,
    },
    /// A piecewise-constant replay of an ingested trace: the multiplier of
    /// the latest breakpoint at or before `t` holds (1 before the first
    /// breakpoint).
    Trace {
        /// Breakpoints in strictly increasing `t_s` order.
        points: Vec<TracePoint>,
    },
}

impl RateCurve {
    /// The curve's multiplier at virtual time `t_ns`.
    pub fn multiplier_at(&self, t_ns: u64) -> f64 {
        match self {
            RateCurve::Stationary => 1.0,
            RateCurve::Diurnal {
                period_s,
                amplitude,
            } => {
                let t_s = t_ns as f64 / 1e9;
                1.0 + amplitude * (2.0 * std::f64::consts::PI * t_s / period_s).sin()
            }
            RateCurve::FlashCrowd {
                start_s,
                duration_s,
                magnitude,
            } => {
                let start = s_to_ns(*start_s);
                let end = s_to_ns(start_s + duration_s);
                if t_ns >= start && t_ns < end {
                    *magnitude
                } else {
                    1.0
                }
            }
            RateCurve::Trace { points } => points
                .iter()
                .rev()
                .find(|p| s_to_ns(p.t_s) <= t_ns)
                .map(|p| p.rate_multiplier)
                .unwrap_or(1.0),
        }
    }

    /// Virtual instants (ns) where this curve changes regime — used for
    /// scenario phase accounting. Smooth curves have none.
    fn boundaries_ns(&self, out: &mut Vec<u64>) {
        match self {
            RateCurve::Stationary | RateCurve::Diurnal { .. } => {}
            RateCurve::FlashCrowd {
                start_s,
                duration_s,
                ..
            } => {
                out.push(s_to_ns(*start_s));
                out.push(s_to_ns(start_s + duration_s));
            }
            RateCurve::Trace { points } => {
                out.extend(points.iter().map(|p| s_to_ns(p.t_s)));
            }
        }
    }
}

/// A discrete change to the feature universe.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ShiftKind {
    /// A correlated hot-key shift: the hash seed of a deterministic
    /// `fraction` of the tables rotates, relocating every hot row of the
    /// affected tables at once (new keys become hot, old ones go cold).
    HotKeyShift {
        /// Fraction of tables affected, in `[0, 1]`.
        fraction: f64,
    },
    /// A drift storm: every feature's mean pooling factor rescales by its
    /// class — the paper's Figure 9 drift compressed into one instant.
    DriftStorm {
        /// Multiplier applied to user-feature pooling means.
        user_scale: f64,
        /// Multiplier applied to content-feature pooling means.
        content_scale: f64,
    },
    /// A table-growth event: the raw categorical space of a deterministic
    /// `fraction` of the tables grows while the hash size stays fixed, so
    /// the hashed row distribution flattens (more collisions, colder head).
    TableGrowth {
        /// Fraction of tables affected, in `[0, 1]`.
        fraction: f64,
        /// Cardinality multiplier for the affected tables (≥ 1 grows).
        cardinality_factor: f64,
    },
}

/// A [`ShiftKind`] scheduled at a virtual instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShiftEvent {
    /// When the shift applies, seconds of virtual time.
    pub at_s: f64,
    /// What changes.
    pub shift: ShiftKind,
}

/// Whether the deterministic table-selection hash picks feature `fi` for
/// shift `shift_idx` at the given fraction. FNV-1a over the two indices,
/// mapped to `[0, 1)` — no RNG, so DES and serve select identically.
fn selects(fi: usize, shift_idx: usize, fraction: f64) -> bool {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in (fi as u64)
        .to_le_bytes()
        .into_iter()
        .chain((shift_idx as u64).to_le_bytes())
    {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    ((hash >> 11) as f64 / (1u64 << 53) as f64) < fraction
}

/// Error raised by scenario construction or trace ingestion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// A trace CSV line failed to parse.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// The assembled spec violates an invariant.
    Invalid(String),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Parse { line, message } => {
                write!(f, "trace CSV line {line}: {message}")
            }
            ScenarioError::Invalid(message) => write!(f, "invalid scenario: {message}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Parses a rate-multiplier trace CSV into [`TracePoint`]s.
///
/// Format: two comma-separated columns `t_s,rate_multiplier`, one
/// breakpoint per line. Blank lines and `#` comments are skipped; an
/// optional header line naming the columns is accepted. Breakpoints must
/// have non-negative, strictly increasing times and positive multipliers.
///
/// # Errors
///
/// Returns [`ScenarioError::Parse`] with the 1-based line number of the
/// first malformed line.
pub fn parse_trace_csv(text: &str) -> Result<Vec<TracePoint>, ScenarioError> {
    let mut points: Vec<TracePoint> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if points.is_empty()
            && trimmed.to_ascii_lowercase().replace(' ', "") == "t_s,rate_multiplier"
        {
            continue;
        }
        let mut cols = trimmed.split(',');
        let (t_col, m_col) = match (cols.next(), cols.next(), cols.next()) {
            (Some(t), Some(m), None) => (t.trim(), m.trim()),
            _ => {
                return Err(ScenarioError::Parse {
                    line,
                    message: format!("expected two columns, got {trimmed:?}"),
                })
            }
        };
        let t_s: f64 = t_col.parse().map_err(|_| ScenarioError::Parse {
            line,
            message: format!("bad time {t_col:?}"),
        })?;
        let rate_multiplier: f64 = m_col.parse().map_err(|_| ScenarioError::Parse {
            line,
            message: format!("bad multiplier {m_col:?}"),
        })?;
        if !t_s.is_finite() || t_s < 0.0 {
            return Err(ScenarioError::Parse {
                line,
                message: format!("time must be finite and >= 0, got {t_s}"),
            });
        }
        if let Some(prev) = points.last() {
            if t_s <= prev.t_s {
                return Err(ScenarioError::Parse {
                    line,
                    message: format!("times must strictly increase ({} then {t_s})", prev.t_s),
                });
            }
        }
        if !rate_multiplier.is_finite() || rate_multiplier <= 0.0 {
            return Err(ScenarioError::Parse {
                line,
                message: format!("multiplier must be finite and > 0, got {rate_multiplier}"),
            });
        }
        points.push(TracePoint {
            t_s,
            rate_multiplier,
        });
    }
    Ok(points)
}

/// A complete workload scenario: a name, a stack of composable rate
/// curves, and a schedule of distribution shifts. One spec drives both the
/// discrete-event trainer and the online serving layer, deterministically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Human-readable scenario name (used in bench artifacts).
    pub name: String,
    /// Rate curves; their multipliers compose by multiplying.
    pub rate_curves: Vec<RateCurve>,
    /// Distribution shifts in non-decreasing `at_s` order.
    pub shifts: Vec<ShiftEvent>,
}

impl ScenarioSpec {
    /// An empty scenario with the given name (stationary, no shifts).
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            rate_curves: Vec::new(),
            shifts: Vec::new(),
        }
    }

    /// Adds a rate curve (builder style).
    pub fn with_curve(mut self, curve: RateCurve) -> Self {
        self.rate_curves.push(curve);
        self
    }

    /// Adds a distribution shift at `at_s` seconds (builder style).
    pub fn with_shift(mut self, at_s: f64, shift: ShiftKind) -> Self {
        self.shifts.push(ShiftEvent { at_s, shift });
        self
    }

    /// The strictly stationary scenario: multiplier 1 forever, no shifts.
    pub fn stationary() -> Self {
        Self::new("stationary")
    }

    /// A diurnal scenario: one sinusoidal QPS curve.
    pub fn diurnal(period_s: f64, amplitude: f64) -> Self {
        Self::new("diurnal").with_curve(RateCurve::Diurnal {
            period_s,
            amplitude,
        })
    }

    /// A flash-crowd scenario: a QPS spike of the given magnitude with a
    /// correlated hot-key shift at onset (flash crowds hit *new* content,
    /// so 30% of the tables re-key when the spike lands).
    pub fn flash_crowd(start_s: f64, duration_s: f64, magnitude: f64) -> Self {
        Self::new("flash-crowd")
            .with_curve(RateCurve::FlashCrowd {
                start_s,
                duration_s,
                magnitude,
            })
            .with_shift(start_s, ShiftKind::HotKeyShift { fraction: 0.3 })
    }

    /// A sustained drift storm: `waves` compounding per-class pooling
    /// rescales (user features heat up, content features cool down),
    /// capped by a table-growth event one interval after the last wave.
    pub fn drift_storm(start_s: f64, interval_s: f64, waves: usize) -> Self {
        let mut spec = Self::new("drift-storm");
        for w in 0..waves {
            spec = spec.with_shift(
                start_s + interval_s * w as f64,
                ShiftKind::DriftStorm {
                    user_scale: 1.4,
                    content_scale: 0.7,
                },
            );
        }
        spec.with_shift(
            start_s + interval_s * waves as f64,
            ShiftKind::TableGrowth {
                fraction: 0.25,
                cardinality_factor: 1.5,
            },
        )
    }

    /// A scenario replaying an ingested rate trace (see
    /// [`parse_trace_csv`] for the CSV schema).
    ///
    /// # Errors
    ///
    /// Propagates [`ScenarioError::Parse`] from the CSV parser.
    pub fn from_trace_csv(name: impl Into<String>, csv: &str) -> Result<Self, ScenarioError> {
        let points = parse_trace_csv(csv)?;
        Ok(Self::new(name).with_curve(RateCurve::Trace { points }))
    }

    /// Validates curve and shift parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Invalid`] describing the first violated
    /// invariant.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        let bad = |msg: String| Err(ScenarioError::Invalid(msg));
        for curve in &self.rate_curves {
            match curve {
                RateCurve::Stationary => {}
                RateCurve::Diurnal {
                    period_s,
                    amplitude,
                } => {
                    if not_positive(*period_s) {
                        return bad(format!("diurnal period must be > 0, got {period_s}"));
                    }
                    if !(0.0..1.0).contains(amplitude) {
                        return bad(format!(
                            "diurnal amplitude must be in [0, 1), got {amplitude}"
                        ));
                    }
                }
                RateCurve::FlashCrowd {
                    start_s,
                    duration_s,
                    magnitude,
                } => {
                    if negative_or_nan(*start_s) {
                        return bad(format!("flash-crowd start must be >= 0, got {start_s}"));
                    }
                    if not_positive(*duration_s) {
                        return bad(format!(
                            "flash-crowd duration must be > 0, got {duration_s}"
                        ));
                    }
                    if not_positive(*magnitude) || !magnitude.is_finite() {
                        return bad(format!(
                            "flash-crowd magnitude must be > 0, got {magnitude}"
                        ));
                    }
                }
                RateCurve::Trace { points } => {
                    for pair in points.windows(2) {
                        if pair[1].t_s <= pair[0].t_s {
                            return bad("trace breakpoints must strictly increase".into());
                        }
                    }
                    if let Some(p) = points
                        .iter()
                        .find(|p| not_positive(p.rate_multiplier) || !p.rate_multiplier.is_finite())
                    {
                        return bad(format!(
                            "trace multiplier must be finite and > 0, got {}",
                            p.rate_multiplier
                        ));
                    }
                }
            }
        }
        for pair in self.shifts.windows(2) {
            if pair[1].at_s < pair[0].at_s {
                return bad("shift events must be in non-decreasing time order".into());
            }
        }
        for ev in &self.shifts {
            if negative_or_nan(ev.at_s) {
                return bad(format!("shift time must be >= 0, got {}", ev.at_s));
            }
            match ev.shift {
                ShiftKind::HotKeyShift { fraction } | ShiftKind::TableGrowth { fraction, .. } => {
                    if !(0.0..=1.0).contains(&fraction) {
                        return bad(format!("shift fraction must be in [0, 1], got {fraction}"));
                    }
                }
                ShiftKind::DriftStorm { .. } => {}
            }
            if let ShiftKind::TableGrowth {
                cardinality_factor, ..
            } = ev.shift
            {
                if not_positive(cardinality_factor) || !cardinality_factor.is_finite() {
                    return bad(format!(
                        "cardinality factor must be finite and > 0, got {cardinality_factor}"
                    ));
                }
            }
            if let ShiftKind::DriftStorm {
                user_scale,
                content_scale,
            } = ev.shift
            {
                if not_positive(user_scale) || not_positive(content_scale) {
                    return bad("drift-storm scales must be > 0".into());
                }
            }
        }
        Ok(())
    }

    /// The composed rate multiplier at virtual time `t_ns` (product of all
    /// curves, floored at [`MIN_RATE_MULTIPLIER`]).
    pub fn rate_multiplier(&self, t_ns: u64) -> f64 {
        self.rate_curves
            .iter()
            .map(|c| c.multiplier_at(t_ns))
            .product::<f64>()
            .max(MIN_RATE_MULTIPLIER)
    }

    /// Scales an inter-arrival gap by the instantaneous rate: a 2x rate
    /// halves the gap. Zero gaps stay zero; positive gaps never round to
    /// zero (virtual time must advance).
    pub fn scaled_gap_ns(&self, gap_ns: u64, t_ns: u64) -> u64 {
        if gap_ns == 0 {
            return 0;
        }
        let scaled = gap_ns as f64 / self.rate_multiplier(t_ns);
        if scaled >= u64::MAX as f64 {
            u64::MAX
        } else {
            (scaled.round() as u64).max(1)
        }
    }

    /// All virtual instants (ns, sorted, deduplicated, excluding 0) where
    /// the scenario changes regime: shift times, flash-crowd edges, and
    /// trace breakpoints.
    pub fn boundaries_ns(&self) -> Vec<u64> {
        let mut out: Vec<u64> = Vec::new();
        for curve in &self.rate_curves {
            curve.boundaries_ns(&mut out);
        }
        out.extend(self.shifts.iter().map(|s| s_to_ns(s.at_s)));
        out.retain(|&t| t > 0);
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The scenario phase index at virtual time `t_ns`: the number of
    /// regime boundaries at or before `t_ns` (phase 0 before the first).
    pub fn phase_of(&self, t_ns: u64) -> u32 {
        self.boundaries_ns().iter().filter(|&&b| b <= t_ns).count() as u32
    }

    /// How many shift events are due at or before virtual time `t_ns`.
    pub fn shifts_due(&self, t_ns: u64) -> usize {
        self.shifts
            .iter()
            .filter(|s| s_to_ns(s.at_s) <= t_ns)
            .count()
    }

    /// The feature universe after the first `applied` shifts, in schedule
    /// order. `applied` is clamped to the schedule length; `applied == 0`
    /// returns `base` unchanged (same name). Hash sizes never change —
    /// embedding tables are allocated once — so remap tables built against
    /// `base` stay valid.
    pub fn model_after(&self, base: &ModelSpec, applied: usize) -> ModelSpec {
        let applied = applied.min(self.shifts.len());
        if applied == 0 {
            return base.clone();
        }
        let mut features: Vec<FeatureSpec> = base.features().to_vec();
        for (idx, ev) in self.shifts.iter().take(applied).enumerate() {
            match ev.shift {
                ShiftKind::HotKeyShift { fraction } => {
                    for (fi, f) in features.iter_mut().enumerate() {
                        if selects(fi, idx, fraction) {
                            f.hash_seed = f
                                .hash_seed
                                .wrapping_mul(0x0000_0100_0000_01B3)
                                .wrapping_add(idx as u64 + 1);
                        }
                    }
                }
                ShiftKind::DriftStorm {
                    user_scale,
                    content_scale,
                } => {
                    for f in features.iter_mut() {
                        let scale = match f.class {
                            FeatureClass::User => user_scale,
                            FeatureClass::Content => content_scale,
                        };
                        f.pooling = f.pooling.with_mean_scaled(scale);
                    }
                }
                ShiftKind::TableGrowth {
                    fraction,
                    cardinality_factor,
                } => {
                    for (fi, f) in features.iter_mut().enumerate() {
                        if selects(fi, idx, fraction) {
                            f.cardinality =
                                ((f.cardinality as f64 * cardinality_factor).round() as u64).max(1);
                        }
                    }
                }
            }
        }
        ModelSpec::new(
            format!("{}+{}#{}", base.name(), self.name, applied),
            base.kind(),
            features,
            base.batch_size(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stationary_is_identity() {
        let s = ScenarioSpec::stationary();
        assert_eq!(s.rate_multiplier(0), 1.0);
        assert_eq!(s.rate_multiplier(1_000_000_000), 1.0);
        assert_eq!(s.scaled_gap_ns(500, 12345), 500);
        assert_eq!(s.phase_of(u64::MAX), 0);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn diurnal_oscillates_around_one() {
        let s = ScenarioSpec::diurnal(4.0, 0.5);
        assert!(s.validate().is_ok());
        // Peak at t = period/4.
        let peak = s.rate_multiplier(s_to_ns(1.0));
        assert!((peak - 1.5).abs() < 1e-9, "peak {peak}");
        // Trough at 3/4 period.
        let trough = s.rate_multiplier(s_to_ns(3.0));
        assert!((trough - 0.5).abs() < 1e-9, "trough {trough}");
        // A 1.5x rate shrinks gaps, a 0.5x rate stretches them.
        assert!(s.scaled_gap_ns(1000, s_to_ns(1.0)) < 1000);
        assert!(s.scaled_gap_ns(1000, s_to_ns(3.0)) > 1000);
    }

    #[test]
    fn flash_crowd_spikes_inside_window_only() {
        let s = ScenarioSpec::flash_crowd(2.0, 1.0, 4.0);
        assert!(s.validate().is_ok());
        assert_eq!(s.rate_multiplier(s_to_ns(1.9)), 1.0);
        assert_eq!(s.rate_multiplier(s_to_ns(2.5)), 4.0);
        assert_eq!(s.rate_multiplier(s_to_ns(3.1)), 1.0);
        // Phase 0 → 1 at onset (hot-key shift + spike edge coincide),
        // → 2 when the spike ends.
        assert_eq!(s.phase_of(s_to_ns(1.0)), 0);
        assert_eq!(s.phase_of(s_to_ns(2.5)), 1);
        assert_eq!(s.phase_of(s_to_ns(5.0)), 2);
        assert_eq!(s.shifts_due(s_to_ns(1.0)), 0);
        assert_eq!(s.shifts_due(s_to_ns(2.5)), 1);
    }

    #[test]
    fn curves_compose_by_multiplying() {
        let s = ScenarioSpec::new("combo")
            .with_curve(RateCurve::FlashCrowd {
                start_s: 0.0,
                duration_s: 10.0,
                magnitude: 3.0,
            })
            .with_curve(RateCurve::FlashCrowd {
                start_s: 5.0,
                duration_s: 10.0,
                magnitude: 2.0,
            });
        assert_eq!(s.rate_multiplier(s_to_ns(1.0)), 3.0);
        assert_eq!(s.rate_multiplier(s_to_ns(6.0)), 6.0);
        assert_eq!(s.rate_multiplier(s_to_ns(12.0)), 2.0);
        assert_eq!(s.rate_multiplier(s_to_ns(20.0)), 1.0);
    }

    #[test]
    fn rate_multiplier_is_floored() {
        let s = ScenarioSpec::new("crush").with_curve(RateCurve::Trace {
            points: vec![TracePoint {
                t_s: 0.0,
                rate_multiplier: 1e-9,
            }],
        });
        assert_eq!(s.rate_multiplier(s_to_ns(1.0)), MIN_RATE_MULTIPLIER);
        // Gaps stretch by at most 1000x and never hit zero.
        assert_eq!(s.scaled_gap_ns(100, s_to_ns(1.0)), 100_000);
        assert_eq!(s.scaled_gap_ns(0, 0), 0);
        assert!(ScenarioSpec::flash_crowd(0.0, 1.0, 1e6).scaled_gap_ns(1, s_to_ns(0.5)) >= 1);
    }

    #[test]
    fn trace_csv_roundtrip_and_errors() {
        let csv = "# a comment\nt_s, rate_multiplier\n0.5, 2.0\n\n1.5,0.25\n";
        let points = parse_trace_csv(csv).expect("valid csv");
        assert_eq!(points.len(), 2);
        let s = ScenarioSpec::from_trace_csv("replay", csv).expect("valid csv");
        assert_eq!(s.rate_multiplier(0), 1.0, "1.0 before the first point");
        assert_eq!(s.rate_multiplier(s_to_ns(1.0)), 2.0);
        assert_eq!(s.rate_multiplier(s_to_ns(2.0)), 0.25);
        assert_eq!(s.phase_of(s_to_ns(2.0)), 2);

        let err = parse_trace_csv("0.5,1.0\n0.5,2.0\n").unwrap_err();
        assert!(matches!(err, ScenarioError::Parse { line: 2, .. }), "{err}");
        assert!(parse_trace_csv("nonsense\n").is_err());
        assert!(parse_trace_csv("1.0,-2.0\n").is_err());
        assert!(parse_trace_csv("1.0\n").is_err());
        assert!(parse_trace_csv("-1.0,2.0\n").is_err());
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let bad = ScenarioSpec::new("x").with_curve(RateCurve::Diurnal {
            period_s: 0.0,
            amplitude: 0.5,
        });
        assert!(bad.validate().is_err());
        let bad = ScenarioSpec::new("x").with_curve(RateCurve::Diurnal {
            period_s: 1.0,
            amplitude: 1.0,
        });
        assert!(bad.validate().is_err());
        let bad = ScenarioSpec::new("x")
            .with_shift(2.0, ShiftKind::HotKeyShift { fraction: 0.5 })
            .with_shift(1.0, ShiftKind::HotKeyShift { fraction: 0.5 });
        assert!(bad.validate().is_err());
        let bad = ScenarioSpec::new("x").with_shift(1.0, ShiftKind::HotKeyShift { fraction: 1.5 });
        assert!(bad.validate().is_err());
        assert!(ScenarioSpec::drift_storm(1.0, 1.0, 3).validate().is_ok());
    }

    #[test]
    fn model_after_applies_shifts_deterministically() {
        let base = ModelSpec::small(12, 7);
        let s = ScenarioSpec::new("shifty")
            .with_shift(1.0, ShiftKind::HotKeyShift { fraction: 0.5 })
            .with_shift(
                2.0,
                ShiftKind::DriftStorm {
                    user_scale: 1.4,
                    content_scale: 0.7,
                },
            )
            .with_shift(
                3.0,
                ShiftKind::TableGrowth {
                    fraction: 0.5,
                    cardinality_factor: 2.0,
                },
            );
        assert_eq!(&s.model_after(&base, 0), &base, "0 shifts = identity");
        let one = s.model_after(&base, 1);
        let rekeyed = base
            .features()
            .iter()
            .zip(one.features())
            .filter(|(a, b)| a.hash_seed != b.hash_seed)
            .count();
        assert!(rekeyed > 0 && rekeyed < base.num_features());
        // Hash sizes never change.
        for (a, b) in base.features().iter().zip(one.features()) {
            assert_eq!(a.hash_size, b.hash_size);
        }
        let all = s.model_after(&base, usize::MAX);
        let grown = base
            .features()
            .iter()
            .zip(all.features())
            .filter(|(a, b)| b.cardinality > a.cardinality)
            .count();
        assert!(grown > 0 && grown < base.num_features());
        // Deterministic: same inputs, same output.
        assert_eq!(s.model_after(&base, 2), s.model_after(&base, 2));
        all.features().iter().for_each(|f| {
            f.validate().expect("shifted features stay valid");
        });
    }

    #[test]
    fn drift_storm_rescales_pooling_by_class() {
        let base = ModelSpec::small(10, 3);
        let s = ScenarioSpec::drift_storm(1.0, 1.0, 2);
        let stormed = s.model_after(&base, 2);
        let mut user_up = false;
        for (a, b) in base.features().iter().zip(stormed.features()) {
            if a.class == FeatureClass::User && a.avg_pooling() > 1.5 {
                assert!(b.avg_pooling() > a.avg_pooling());
                user_up = true;
            }
        }
        assert!(user_up, "some user feature pooling must grow");
    }
}
