//! Hardware description of the training cluster (Section 5.2 of the paper).
//!
//! The paper's evaluation system is homogeneous — sixteen identical GPUs —
//! but real fleets mix GPU generations with different HBM sizes and
//! bandwidths. The cluster is therefore described by a small set of
//! [`DeviceClass`]es (the distinct GPU SKUs present) plus a per-GPU class
//! assignment: [`ClusterSpec`]. Every consumer — the cost models, the MILP
//! formulation, the greedy/scalable/hierarchical solvers, the discrete-event
//! simulator, the serving layer and the analytical estimator — reads per-GPU
//! capacities and bandwidths through this type.
//!
//! [`ClusterSpec::uniform`] builds the single-class cluster and reproduces
//! the historical homogeneous `SystemSpec` behaviour exactly (same
//! constructor signature, same derived quantities), so every seeded golden
//! fingerprint in the repo is unchanged; `SystemSpec` survives as a type
//! alias for source compatibility.

use serde::{Deserialize, Serialize};

/// Number of bytes in one gibibyte.
pub const GIB: u64 = 1 << 30;

/// One GPU SKU: the HBM reserved for embeddings, the host DRAM reachable
/// over UVM, and the bandwidths of both tiers as seen from the GPU.
///
/// The paper's evaluation devices reserve 24 GB of HBM and 128 GB of host
/// DRAM per GPU with A100-class HBM bandwidth and PCIe 3.0x16 UVM bandwidth;
/// [`DeviceClass::paper_a100`] encodes exactly that.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceClass {
    /// Short human-readable SKU label (e.g. `"a100"`).
    pub name: &'static str,
    /// HBM bytes reserved for embedding tables on each GPU of this class
    /// (`Cap_D`).
    pub hbm_capacity: u64,
    /// Host DRAM bytes reachable via UVM for each GPU of this class
    /// (`Cap_H`).
    pub dram_capacity: u64,
    /// HBM bandwidth in GB/s as seen by the embedding kernels (`BW_HBM`).
    pub hbm_bandwidth_gbps: f64,
    /// UVM (interconnect) bandwidth in GB/s (`BW_UVM`).
    pub uvm_bandwidth_gbps: f64,
}

impl DeviceClass {
    /// Builds a device class.
    ///
    /// # Panics
    ///
    /// Panics if either bandwidth is not positive.
    pub fn new(
        name: &'static str,
        hbm_capacity: u64,
        dram_capacity: u64,
        hbm_bandwidth_gbps: f64,
        uvm_bandwidth_gbps: f64,
    ) -> Self {
        assert!(
            hbm_bandwidth_gbps > 0.0 && uvm_bandwidth_gbps > 0.0,
            "bandwidths must be positive"
        );
        Self {
            name,
            hbm_capacity,
            dram_capacity,
            hbm_bandwidth_gbps,
            uvm_bandwidth_gbps,
        }
    }

    /// The paper's evaluation device: 24 GB HBM + 128 GB host DRAM,
    /// A100-class HBM bandwidth (1555 GB/s) and PCIe 3.0x16 UVM bandwidth
    /// (16 GB/s single-direction achievable).
    pub fn paper_a100() -> Self {
        Self::new("a100", 24 * GIB, 128 * GIB, 1555.0, 16.0)
    }

    /// An H100-class device: 80 GB HBM3 (3350 GB/s) with the same 128 GB
    /// host DRAM pool behind PCIe 5.0x16 UVM (~50 GB/s achievable).
    pub fn h100_like() -> Self {
        Self::new("h100", 80 * GIB, 128 * GIB, 3350.0, 50.0)
    }

    /// Ratio of HBM to UVM bandwidth — the penalty factor for placing hot
    /// rows in the wrong tier (two orders of magnitude on the paper's
    /// devices).
    pub fn bandwidth_ratio(&self) -> f64 {
        self.hbm_bandwidth_gbps / self.uvm_bandwidth_gbps
    }

    /// A copy with capacities divided by `factor` (bandwidths unchanged).
    pub fn scaled(&self, factor: u64) -> Self {
        assert!(factor > 0, "scale factor must be non-zero");
        Self {
            hbm_capacity: (self.hbm_capacity / factor).max(1),
            dram_capacity: (self.dram_capacity / factor).max(1),
            ..*self
        }
    }
}

/// Description of a (possibly heterogeneous) training cluster: the distinct
/// [`DeviceClass`]es present and, for every GPU, which class it belongs to.
///
/// Consumers read hardware parameters *per GPU*
/// ([`hbm_capacity`](Self::hbm_capacity),
/// [`hbm_bandwidth_gbps`](Self::hbm_bandwidth_gbps), …); aggregate
/// quantities ([`total_hbm_capacity`](Self::total_hbm_capacity), …) sum
/// over the per-GPU values. Class index 0
/// is the *reference class*: solvers build their shared split-selection
/// menus against it (for a uniform cluster it is the only class, so the
/// historical behaviour is reproduced bit-for-bit).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    classes: Vec<DeviceClass>,
    class_of_gpu: Vec<usize>,
}

/// Source-compatibility alias for the pre-heterogeneity flat system type.
/// `SystemSpec::uniform(gpus, hbm, dram, hbm_bw, uvm_bw)` keeps its exact
/// historical signature and semantics through [`ClusterSpec::uniform`].
pub type SystemSpec = ClusterSpec;

impl ClusterSpec {
    /// Builds a cluster from explicit classes and a per-GPU class
    /// assignment.
    ///
    /// # Panics
    ///
    /// Panics if there are no classes, no GPUs, or an assignment indexes a
    /// missing class.
    pub fn with_classes(classes: Vec<DeviceClass>, class_of_gpu: Vec<usize>) -> Self {
        assert!(
            !classes.is_empty(),
            "cluster needs at least one device class"
        );
        assert!(!class_of_gpu.is_empty(), "system needs at least one GPU");
        for &c in &class_of_gpu {
            assert!(c < classes.len(), "GPU assigned to missing class {c}");
        }
        Self {
            classes,
            class_of_gpu,
        }
    }

    /// Builds a cluster from contiguous blocks of identical GPUs:
    /// `groups[i] = (class, count)` contributes `count` GPUs of that class,
    /// in order. GPU ids therefore run class-block-major, matching the
    /// node-major convention of [`NodeTopology`](crate::NodeTopology) when
    /// whole nodes share a SKU.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is empty or every count is zero.
    pub fn mixed(groups: &[(DeviceClass, usize)]) -> Self {
        let classes: Vec<DeviceClass> = groups.iter().map(|(c, _)| *c).collect();
        let class_of_gpu: Vec<usize> = groups
            .iter()
            .enumerate()
            .flat_map(|(i, &(_, count))| std::iter::repeat_n(i, count))
            .collect();
        Self::with_classes(classes, class_of_gpu)
    }

    /// Builds a homogeneous cluster: one device class shared by every GPU.
    /// This is the historical `SystemSpec::uniform` constructor, argument
    /// for argument.
    ///
    /// # Panics
    ///
    /// Panics if `num_gpus == 0` or either bandwidth is not positive.
    pub fn uniform(
        num_gpus: usize,
        hbm_capacity_per_gpu: u64,
        dram_capacity_per_gpu: u64,
        hbm_bandwidth_gbps: f64,
        uvm_bandwidth_gbps: f64,
    ) -> Self {
        assert!(num_gpus > 0, "system needs at least one GPU");
        Self::with_classes(
            vec![DeviceClass::new(
                "gpu",
                hbm_capacity_per_gpu,
                dram_capacity_per_gpu,
                hbm_bandwidth_gbps,
                uvm_bandwidth_gbps,
            )],
            vec![0; num_gpus],
        )
    }

    /// The 16-GPU evaluation system of the paper (sixteen
    /// [`DeviceClass::paper_a100`] devices).
    pub fn paper_16_gpu() -> Self {
        let c = DeviceClass::paper_a100();
        Self::uniform(
            16,
            c.hbm_capacity,
            c.dram_capacity,
            c.hbm_bandwidth_gbps,
            c.uvm_bandwidth_gbps,
        )
    }

    /// Same device geometry as [`paper_16_gpu`](Self::paper_16_gpu) with a
    /// different GPU count.
    pub fn paper_with_gpus(num_gpus: usize) -> Self {
        assert!(num_gpus > 0, "system needs at least one GPU");
        let mut s = Self::paper_16_gpu();
        s.class_of_gpu = vec![0; num_gpus];
        s
    }

    /// Returns a copy with every class's capacities divided by `factor`
    /// (bandwidths unchanged). Scaling the system and the model by the same
    /// factor keeps the capacity *pressure* — and hence the placement
    /// problem — unchanged while shrinking simulation state.
    pub fn scaled(&self, factor: u64) -> Self {
        Self {
            classes: self.classes.iter().map(|c| c.scaled(factor)).collect(),
            class_of_gpu: self.class_of_gpu.clone(),
        }
    }

    /// Returns a copy with every device class rewritten by `f` (e.g. to
    /// tighten HBM for a capacity-pressure experiment without touching the
    /// class assignment).
    pub fn map_classes(&self, f: impl FnMut(DeviceClass) -> DeviceClass) -> Self {
        Self {
            classes: self.classes.iter().copied().map(f).collect(),
            class_of_gpu: self.class_of_gpu.clone(),
        }
    }

    /// Number of GPUs (trainers).
    pub fn num_gpus(&self) -> usize {
        self.class_of_gpu.len()
    }

    /// The distinct device classes of the cluster.
    pub fn classes(&self) -> &[DeviceClass] {
        &self.classes
    }

    /// Number of device classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Class index of a GPU.
    ///
    /// # Panics
    ///
    /// Panics if `gpu` is out of range.
    pub fn class_of(&self, gpu: usize) -> usize {
        self.class_of_gpu[gpu]
    }

    /// The device class of a GPU.
    pub fn device(&self, gpu: usize) -> &DeviceClass {
        &self.classes[self.class_of_gpu[gpu]]
    }

    /// The reference class (index 0) solvers build shared menus against.
    pub fn reference_class(&self) -> &DeviceClass {
        &self.classes[0]
    }

    /// GPU ids belonging to a class, ascending.
    pub fn gpus_in_class(&self, class: usize) -> Vec<usize> {
        self.class_of_gpu
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == class)
            .map(|(g, _)| g)
            .collect()
    }

    /// Whether every GPU shares one device class — the regime in which the
    /// MILP's optimum set is closed under arbitrary GPU permutation.
    pub fn is_uniform(&self) -> bool {
        self.class_of_gpu.iter().all(|&c| c == self.class_of_gpu[0])
    }

    /// HBM bytes reserved for embeddings on `gpu`.
    pub fn hbm_capacity(&self, gpu: usize) -> u64 {
        self.device(gpu).hbm_capacity
    }

    /// Host DRAM bytes reachable via UVM for `gpu`.
    pub fn dram_capacity(&self, gpu: usize) -> u64 {
        self.device(gpu).dram_capacity
    }

    /// HBM bandwidth of `gpu` in GB/s.
    pub fn hbm_bandwidth_gbps(&self, gpu: usize) -> f64 {
        self.device(gpu).hbm_bandwidth_gbps
    }

    /// UVM bandwidth of `gpu` in GB/s.
    pub fn uvm_bandwidth_gbps(&self, gpu: usize) -> f64 {
        self.device(gpu).uvm_bandwidth_gbps
    }

    /// Ratio of HBM to UVM bandwidth on `gpu` — the penalty factor for
    /// placing hot rows in the wrong tier.
    pub fn bandwidth_ratio(&self, gpu: usize) -> f64 {
        self.device(gpu).bandwidth_ratio()
    }

    /// Total HBM bytes reserved for embeddings across all GPUs.
    pub fn total_hbm_capacity(&self) -> u64 {
        self.class_of_gpu
            .iter()
            .map(|&c| self.classes[c].hbm_capacity)
            .sum()
    }

    /// Total host DRAM bytes reachable via UVM across all GPUs.
    pub fn total_dram_capacity(&self) -> u64 {
        self.class_of_gpu
            .iter()
            .map(|&c| self.classes[c].dram_capacity)
            .sum()
    }

    /// Total memory available to embeddings across all tiers and GPUs.
    pub fn total_capacity(&self) -> u64 {
        self.total_hbm_capacity() + self.total_dram_capacity()
    }
}

impl Default for ClusterSpec {
    fn default() -> Self {
        Self::paper_16_gpu()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_system_geometry() {
        let s = SystemSpec::paper_16_gpu();
        assert_eq!(s.num_gpus(), 16);
        assert_eq!(s.total_hbm_capacity(), 16 * 24 * GIB);
        assert_eq!(s.total_dram_capacity(), 16 * 128 * GIB);
        assert!(
            s.bandwidth_ratio(0) > 90.0,
            "HBM should be ~100x faster than UVM"
        );
        assert!(s.is_uniform());
    }

    #[test]
    fn scaled_system_divides_capacity_only() {
        let s = SystemSpec::paper_16_gpu().scaled(1024);
        assert_eq!(s.hbm_capacity(0), 24 * GIB / 1024);
        assert_eq!(s.hbm_bandwidth_gbps(0), 1555.0);
        assert_eq!(s.num_gpus(), 16);
    }

    #[test]
    fn gpu_count_override() {
        let s = SystemSpec::paper_with_gpus(8);
        assert_eq!(s.num_gpus(), 8);
        assert_eq!(s.hbm_capacity(7), 24 * GIB);
    }

    #[test]
    #[should_panic(expected = "system needs at least one GPU")]
    fn zero_gpus_rejected() {
        let _ = SystemSpec::uniform(0, 1, 1, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "bandwidths must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = SystemSpec::uniform(1, 1, 1, 0.0, 1.0);
    }

    #[test]
    fn mixed_cluster_reads_per_gpu_parameters() {
        let big = DeviceClass::new("big", 64 * GIB, 128 * GIB, 2000.0, 32.0);
        let small = DeviceClass::new("small", 16 * GIB, 128 * GIB, 900.0, 16.0);
        let s = ClusterSpec::mixed(&[(big, 2), (small, 2)]);
        assert_eq!(s.num_gpus(), 4);
        assert_eq!(s.num_classes(), 2);
        assert!(!s.is_uniform());
        assert_eq!(s.class_of(0), 0);
        assert_eq!(s.class_of(3), 1);
        assert_eq!(s.hbm_capacity(0), 64 * GIB);
        assert_eq!(s.hbm_capacity(3), 16 * GIB);
        assert_eq!(s.hbm_bandwidth_gbps(1), 2000.0);
        assert_eq!(s.uvm_bandwidth_gbps(2), 16.0);
        assert_eq!(s.total_hbm_capacity(), 2 * 64 * GIB + 2 * 16 * GIB);
        assert_eq!(s.gpus_in_class(0), vec![0, 1]);
        assert_eq!(s.gpus_in_class(1), vec![2, 3]);
        assert_eq!(s.reference_class().name, "big");
    }

    #[test]
    fn uniform_round_trips_with_explicit_classes() {
        let via_uniform = ClusterSpec::uniform(4, 1 << 30, 1 << 34, 1555.0, 16.0);
        let via_classes = ClusterSpec::with_classes(
            vec![DeviceClass::new("gpu", 1 << 30, 1 << 34, 1555.0, 16.0)],
            vec![0; 4],
        );
        assert_eq!(via_uniform, via_classes);
        assert!(via_classes.is_uniform());
    }

    #[test]
    #[should_panic(expected = "GPU assigned to missing class")]
    fn out_of_range_class_rejected() {
        let _ = ClusterSpec::with_classes(vec![DeviceClass::paper_a100()], vec![0, 1]);
    }
}
