//! # recshard-obs
//!
//! Deterministic **observability substrate** for the RecShard reproduction:
//! a metrics registry, structured event tracing, and a run-report layer,
//! threaded through the hot paths of the solver (`recshard-milp`,
//! `recshard`), the discrete-event trainer (`recshard-des`) and the online
//! inference layer (`recshard-serve`).
//!
//! Everything in this crate follows the repo's determinism contract: with a
//! fixed seed, a traced run exports **byte-identical** JSONL traces and
//! metrics snapshots across repetitions, and the instrumentation never
//! perturbs the instrumented computation — the no-op sink keeps every golden
//! fingerprint bit-identical.
//!
//! The three layers:
//!
//! * [`MetricsRegistry`] — named counters, gauges, fixed-bucket histograms
//!   and P² quantile sinks ([`recshard_stats::StreamingCdf`]). Registration
//!   returns `Copy` handles; the hot path is an index plus one atomic op
//!   (counters/gauges/histograms) or one per-metric lock (quantiles) — no
//!   allocation, no name lookup. The per-metric locking mirrors the stripe
//!   design of `recshard-serve`'s `ShardedCache`: contention is bounded by
//!   the metric, not the registry.
//! * [`TraceEvent`] / [`TraceBuffer`] / [`Trace`] — typed span/instant
//!   records (station enqueue/service, barrier waits, re-shard decisions,
//!   simplex pivot/refactorisation counts, B&B node open/prune, bucketing
//!   compression, serve cache traffic) buffered per worker and merged in
//!   deterministic `(virtual time, worker, sequence)` order. A merged trace
//!   exports as JSONL or as Chrome `trace_event` JSON for `about://tracing`.
//! * [`ObsSink`] / [`ObsHandle`] / [`Collector`] — the hook the hot layers
//!   call through. [`ObsHandle::noop`] is a `None` branch (no virtual call),
//!   so un-instrumented runs pay one predictable branch per hook site;
//!   [`Collector`] buffers trace records and routes them into well-known
//!   registry metrics, and [`Collector::finish`] yields an [`ObsBundle`]
//!   (merged trace + sorted metrics snapshot).
//! * [`RunReport`] — renders per-run summaries (events/sec, pivots, hit
//!   rates, tails) for the bench bins, replacing their hand-rolled output.
//!
//! ```
//! use recshard_obs::{Collector, ObsHandle, ObsSink, TraceEvent};
//!
//! let mut collector = Collector::new();
//! {
//!     let mut obs = ObsHandle::attached(&mut collector);
//!     if obs.enabled() {
//!         obs.record(1_000, TraceEvent::IterationDone { iter: 0, sojourn_ns: 1_000 });
//!     }
//! }
//! let bundle = collector.finish();
//! assert_eq!(bundle.trace.len(), 1);
//! assert!(bundle.trace.to_chrome().starts_with("{\"traceEvents\":["));
//! ```
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod registry;
pub mod report;
pub mod sink;
pub mod trace;

pub use registry::{
    CounterId, GaugeId, HistogramId, MetricValue, MetricsRegistry, MetricsSnapshot, QuantileId,
    QuantileStats,
};
pub use report::{events_per_sec, RunReport};
pub use sink::{Collector, NoopSink, ObsBundle, ObsHandle, ObsSink};
pub use trace::{LinkKind, PruneReason, Trace, TraceBuffer, TraceEvent, TraceRecord};
