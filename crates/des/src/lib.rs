//! # recshard-des
//!
//! A seeded, deterministic **discrete-event cluster simulator** for sharded
//! embedding-table training.
//!
//! The static RecShard pipeline (profile → placement → remap) and the
//! closed-form/trace simulators in `recshard-memsim` answer "how long does
//! one iteration take in isolation?". The paper's headline claims, however,
//! are about *sustained training throughput* on a multi-GPU cluster, where
//! queueing in front of slow GPUs, UVM stalls, kernel launch overheads, the
//! all-to-all barrier and load imbalance interact **over time**. This crate
//! models that dynamic system:
//!
//! * [`EventQueue`] — a binary-heap event queue with a virtual clock and
//!   stable `(time, sequence)` tie-breaking: identical seeds replay identical
//!   event logs, bit for bit.
//! * [`GpuStation`] — per-GPU FIFO service stations whose service time splits
//!   into HBM, UVM and kernel-overhead components (the additive mixed-tier
//!   model of Section 4.2).
//! * [`SharedRateResource`] — processor-sharing links for
//!   [`ContentionMode::SharedRate`]: per-GPU HBM/UVM channels, per-GPU
//!   NVLink egress, and one fabric port per receiving node, all re-estimated
//!   in integer virtual time on every tenancy change so incast and
//!   cross-iteration bandwidth sharing appear in the sojourn tail.
//! * [`ArrivalProcess`] / [`IterationWorkload`] — fixed-rate or Poisson batch
//!   arrivals whose lookups are drawn from the *same* Zipf/pooling/coverage
//!   generators as the rest of the reproduction (`recshard-data`) and routed
//!   through the active plan's remap tables.
//! * an **all-to-all exchange barrier** — synchronous training completes an
//!   iteration only after the slowest GPU's gather plus the interconnect
//!   exchange.
//! * [`ReshardController`] + [`DriftSchedule`] — online re-sharding: the
//!   workload drifts (Figure 9), the controller watches per-GPU busy-time
//!   imbalance, and swaps in a freshly solved [`ShardingPlan`] mid-run,
//!   charging a migration stall.
//! * tail-latency metrics — per-iteration sojourn times stream into
//!   `recshard-stats`' constant-space [`StreamingCdf`] (P² quantiles), so
//!   p50/p95/p99 come out of million-iteration runs without buffering.
//!
//! [`ShardingPlan`]: recshard_sharding::ShardingPlan
//! [`StreamingCdf`]: recshard_stats::StreamingCdf
//!
//! ## When to use which simulator
//!
//! | question | tool |
//! |---|---|
//! | expected per-iteration time of a plan | `recshard_memsim::AnalyticalEstimator` |
//! | where do a batch's accesses land | `recshard_memsim::EmbeddingOpSimulator` |
//! | sustained throughput, p99 tails, drift, re-sharding | [`ClusterSimulator`] |
//!
//! ## Quick example
//!
//! ```
//! use recshard_data::ModelSpec;
//! use recshard_stats::DatasetProfiler;
//! use recshard_sharding::{GreedySharder, SizeCost, SystemSpec};
//! use recshard_des::{ArrivalProcess, ClusterConfig, ClusterSimulator};
//!
//! let model = ModelSpec::small(8, 3);
//! let profile = DatasetProfiler::profile_model(&model, 1_000, 7);
//! let system = SystemSpec::uniform(4, u64::MAX / 8, u64::MAX / 8, 1555.0, 16.0);
//! let plan = GreedySharder::new(SizeCost).shard(&model, &profile, &system).unwrap();
//!
//! let config = ClusterConfig {
//!     iterations: 500,
//!     arrival: ArrivalProcess::Poisson { mean_interval_ms: 2.0 },
//!     ..ClusterConfig::default()
//! };
//! let summary = ClusterSimulator::new(&model, &plan, &profile, &system, config).run();
//! assert_eq!(summary.completed, 500);
//! println!("{summary}");
//! ```
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod cluster;
pub mod controller;
pub mod engine;
pub mod error;
pub mod resource;
pub mod station;
pub mod time;
pub mod workload;

pub use cluster::{ClusterConfig, ClusterSimulator, ContentionMode, RunSummary};
pub use controller::{CheckOutcome, DriftSchedule, PlanSolver, ReshardController, ReshardPolicy};
pub use engine::{EventQueue, Scheduled};
pub use error::DesError;
pub use resource::{CompletedTransfer, SharedRateResource, WORK_UNITS_PER_NS};
pub use station::{GpuStation, ServiceDemand};
pub use time::SimTime;
pub use workload::{ArrivalProcess, IterationWorkload};
