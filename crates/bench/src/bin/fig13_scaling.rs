//! Figure 13: slowdown of each sharding strategy as the model scales 2x (RM2)
//! and 4x (RM3) from RM1.
//!
//! Two measurement backends:
//!
//! * default — the trace-driven single-iteration simulator (`recshard-memsim`),
//! * `RECSHARD_BACKEND=des` — the discrete-event cluster simulator
//!   (`recshard-des`): each strategy's plan is replayed under lightly loaded
//!   arrivals (`RECSHARD_DES_ITERS` iterations, default 200) and the median
//!   iteration sojourn time is reported. The DES numbers additionally include
//!   the all-to-all exchange and queueing: a baseline whose slowest GPU
//!   cannot keep the arrival pace builds a queue, so its slowdown can come
//!   out far larger than under the single-iteration backend — that
//!   amplification under sustained load is precisely what the DES models.

#![allow(clippy::print_stdout)]
use recshard_bench::{compare_strategies, ExperimentConfig, Strategy};
use recshard_data::RmKind;
use recshard_des::ArrivalProcess;
use std::collections::HashMap;

fn main() {
    let cfg = ExperimentConfig::from_env();
    let use_des = std::env::var("RECSHARD_BACKEND").is_ok_and(|v| v == "des");
    let des_iters = std::env::var("RECSHARD_DES_ITERS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(200);
    let mut times: HashMap<(RmKind, Strategy), f64> = HashMap::new();
    for kind in [RmKind::Rm1, RmKind::Rm2, RmKind::Rm3] {
        if use_des {
            let setup = cfg.setup(kind);
            for s in Strategy::all() {
                // Lightly loaded arrivals: the p50 sojourn is the strategy's
                // service + exchange time, free of queueing divergence.
                let plan = setup.plan(s);
                let interval = setup.arrival_interval_ms(&plan, 3.0);
                let summary = setup.des_summary(
                    &plan,
                    cfg.des_config(
                        des_iters,
                        ArrivalProcess::FixedRate {
                            interval_ms: interval,
                        },
                    ),
                );
                times.insert((kind, s), summary.p50_ms);
            }
        } else {
            let cmp = compare_strategies(kind, &cfg);
            for (s, _, r) in &cmp.results {
                times.insert((kind, *s), r.iteration_time_ms());
            }
        }
    }

    let backend = if use_des {
        "discrete-event cluster sim"
    } else {
        "trace sim"
    };
    println!(
        "# Figure 13: max EMB iteration-time slowdown as the model scales from RM1 ({backend})"
    );
    println!("| strategy | 2x model (RM2 / RM1) | 4x model (RM3 / RM1) |");
    println!("|----------|----------------------|----------------------|");
    for s in Strategy::all() {
        let base = times[&(RmKind::Rm1, s)];
        println!(
            "| {} | {:.2}x | {:.2}x |",
            s.label(),
            times[&(RmKind::Rm2, s)] / base,
            times[&(RmKind::Rm3, s)] / base
        );
    }
    let baseline_avg_4x: f64 = [
        Strategy::SizeBased,
        Strategy::LookupBased,
        Strategy::SizeLookupBased,
    ]
    .iter()
    .map(|&s| times[&(RmKind::Rm3, s)] / times[&(RmKind::Rm1, s)])
    .sum::<f64>()
        / 3.0;
    let recshard_4x =
        times[&(RmKind::Rm3, Strategy::RecShard)] / times[&(RmKind::Rm1, Strategy::RecShard)];
    println!();
    println!(
        "Baselines slow down by {baseline_avg_4x:.2}x on average going to the 4x model while \
         RecShard slows down by only {recshard_4x:.2}x — the paper reports 3.07x vs 1.2x, because \
         the extra capacity added by larger hash sizes is rarely accessed and RecShard leaves it in UVM."
    );
}
