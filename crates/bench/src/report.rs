//! Shared reporting for the bench binaries, built on the `recshard-obs`
//! run-report layer.
//!
//! Every throughput binary used to hand-roll the same three things: a
//! `u64` environment-override reader, an events/sec line, and a
//! determinism footer asserting that a same-seed replay reproduced the
//! first run's fingerprint. They now all come from here, rendered through
//! [`RunReport`] so the output format is uniform across
//! `des_throughput`, `serve_qps`, `solver_scaling` and `des_bench`.

pub use recshard_obs::{events_per_sec, RunReport};

/// Reads a `u64` environment override, falling back to `default` when the
/// variable is unset or unparseable.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The determinism footer every seeded bench binary prints: a same-seed
/// replay must reproduce the first run's fingerprint exactly.
///
/// # Panics
///
/// Panics if the fingerprints differ — a seeded run that fails to replay
/// byte-identically is a determinism bug, not a reportable result.
pub fn determinism_report(label: &str, first: u64, replay: u64) -> RunReport {
    assert_eq!(
        first, replay,
        "{label}: same-seed replay fingerprint {replay:#018x} must \
         reproduce the first run's {first:#018x}"
    );
    let mut report = RunReport::new(format!("determinism: {label}"));
    report
        .push_fingerprint("first run", first)
        .push_fingerprint("replay", replay)
        .push("byte-identical", true);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_u64_parses_and_falls_back() {
        // Deliberately unset / garbage variables fall back to the default.
        assert_eq!(env_u64("RECSHARD_TEST_SURELY_UNSET_VAR", 42), 42);
        std::env::set_var("RECSHARD_TEST_REPORT_ENV_U64", "17");
        assert_eq!(env_u64("RECSHARD_TEST_REPORT_ENV_U64", 42), 17);
        std::env::set_var("RECSHARD_TEST_REPORT_ENV_U64", "not a number");
        assert_eq!(env_u64("RECSHARD_TEST_REPORT_ENV_U64", 42), 42);
        std::env::remove_var("RECSHARD_TEST_REPORT_ENV_U64");
    }

    #[test]
    fn determinism_report_renders_matching_fingerprints() {
        let report = determinism_report("demo", 0xABCD, 0xABCD);
        let text = report.render();
        assert!(text.starts_with("== determinism: demo ==\n"));
        assert!(text.contains("0x000000000000abcd"));
        assert!(text.contains("byte-identical: true"));
    }

    #[test]
    #[should_panic(expected = "must reproduce")]
    fn determinism_report_panics_on_drift() {
        determinism_report("demo", 1, 2);
    }
}
