//! Error type shared by sharders and plan validation.

use recshard_data::FeatureId;

/// Errors produced while constructing or validating sharding plans.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardingError {
    /// A table does not fit anywhere in the system (even split across tiers).
    CapacityExceeded {
        /// The table that could not be placed.
        table: FeatureId,
        /// Bytes that could not be accommodated.
        overflow_bytes: u64,
    },
    /// The aggregate model does not fit in the system's total memory.
    SystemTooSmall {
        /// Bytes required by the model.
        required_bytes: u64,
        /// Bytes available across all tiers and GPUs.
        available_bytes: u64,
    },
    /// A plan is structurally invalid (table missing/duplicated, GPU index out
    /// of range, row counts inconsistent, capacity violated).
    InvalidPlan(String),
    /// The model and profile disagree (e.g. different feature counts).
    ProfileMismatch(String),
}

impl std::fmt::Display for ShardingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardingError::CapacityExceeded {
                table,
                overflow_bytes,
            } => {
                write!(
                    f,
                    "table {table} exceeds available capacity by {overflow_bytes} bytes"
                )
            }
            ShardingError::SystemTooSmall {
                required_bytes,
                available_bytes,
            } => write!(
                f,
                "model needs {required_bytes} bytes but the system only has {available_bytes}"
            ),
            ShardingError::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
            ShardingError::ProfileMismatch(msg) => write!(f, "profile mismatch: {msg}"),
        }
    }
}

impl std::error::Error for ShardingError {}
