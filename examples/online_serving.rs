//! Online inference walkthrough: HBM-as-cache serving on top of a RecShard
//! placement.
//!
//! Training-time RecShard decides *statically* which rows live in HBM; the
//! serving layer makes the same call *dynamically* — every row lives in UVM
//! and each GPU shard's HBM is a managed cache whose policy can reuse the
//! profiled access CDFs. This example profiles a small skewed model, builds
//! a RecShard placement, and serves the same seeded query stream under all
//! three cache policies.
//!
//! Run with: `cargo run --release --example online_serving`

#![allow(clippy::print_stdout)]
use recshard::{RecShard, RecShardConfig};
use recshard_data::ModelSpec;
use recshard_serve::{hash_placement, ArrivalModel, InferenceServer, PolicyKind, ServeConfig};
use recshard_sharding::SystemSpec;
use recshard_stats::DatasetProfiler;

fn main() {
    // 1. A small model and a serving cluster whose per-shard HBM cache holds
    //    only a sliver of the embedding bytes.
    let model = ModelSpec::small(12, 21).scaled(4);
    let shards = 2;
    let system = SystemSpec::uniform(
        shards,
        (model.total_bytes() / (16 * shards as u64)).max(1),
        model.total_bytes(),
        1555.0,
        16.0,
    );
    println!(
        "model: {} tables, {:.1} MiB of embeddings; cache: {:.2} MiB per shard\n",
        model.num_features(),
        model.total_bytes() as f64 / (1 << 20) as f64,
        system.hbm_capacity(0) as f64 / (1 << 20) as f64,
    );

    // 2. Profile the training distribution — the same statistics the
    //    training-time MILP consumes now drive the serving cache.
    let profile = DatasetProfiler::profile_model(&model, 4_000, 7);

    // 3. Placements: profile-free hash routing vs the RecShard plan.
    let recshard_plan = RecShard::new(RecShardConfig::default())
        .plan(&model, &profile, &system)
        .expect("recshard placement");
    let hash_plan = hash_placement(&model, shards);

    // 4. Serve the identical seeded stream under each policy.
    let config = ServeConfig {
        queries: 3_000,
        warmup: 500,
        batch_size: 4,
        seed: 0xCAFE,
        arrival: ArrivalModel::Poisson {
            mean_interval_us: 250.0,
        },
        ..ServeConfig::default()
    };
    println!("placement+policy: hit rate, p50/p95/p99 (ms)");
    for (plan, policies) in [
        (&hash_plan, vec![PolicyKind::Lru]),
        (&recshard_plan, PolicyKind::all().to_vec()),
    ] {
        for policy in policies {
            let report = InferenceServer::run(
                &model,
                plan,
                &profile,
                &system,
                ServeConfig { policy, ..config },
            );
            println!(
                "  {:>8}+{:<10} {:>5.1}%  {:.3}/{:.3}/{:.3}",
                report.placement,
                report.policy.label(),
                report.hit_rate * 100.0,
                report.p50_ms,
                report.p95_ms,
                report.p99_ms
            );
        }
    }
    println!();
    println!(
        "StatGuided pins each table's rows above the profiled CDF knee and\n\
         refuses admission to one-hit wonders, so skewed tail traffic cannot\n\
         churn the head out of HBM — Figure 5's skew argument, applied online."
    );
}
