//! Hybrid-parallel training: real (small) numerics plus simulated
//! production-scale embedding timing.
//!
//! Production DLRM training replicates the MLPs across trainers (data
//! parallelism) and shards the embedding tables (model parallelism), so the
//! per-iteration critical path is `max(embedding time across GPUs)` plus the
//! (roughly constant) MLP and communication time. [`HybridParallelTrainer`]
//! couples a real, scaled-down [`DlrmModel`] with the tiered-memory simulator:
//! every training step performs actual SGD on the small model while charging
//! the step the embedding-operator time that the *production-scale* plan
//! would incur, which is what the end-to-end examples and the Amdahl analysis
//! of Section 6.4 need.

use crate::model::DlrmModel;
use rand::SeedableRng;
use recshard_data::SampleGenerator;
use recshard_memsim::EmbeddingOpSimulator;
use serde::{Deserialize, Serialize};

/// Timing and loss of one hybrid training step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingStepReport {
    /// Mean BCE loss of the step.
    pub loss: f32,
    /// Simulated embedding-operator time of the slowest GPU, in ms.
    pub embedding_time_ms: f64,
    /// Modelled dense (MLP + interaction + communication) time, in ms.
    pub dense_time_ms: f64,
}

impl TrainingStepReport {
    /// Total critical-path step time in milliseconds.
    pub fn step_time_ms(&self) -> f64 {
        self.embedding_time_ms + self.dense_time_ms
    }

    /// Fraction of the step spent in embedding operations (the `p` of the
    /// paper's Amdahl's-law discussion).
    pub fn embedding_fraction(&self) -> f64 {
        self.embedding_time_ms / self.step_time_ms()
    }
}

/// A trainer coupling real small-scale numerics with simulated
/// production-scale embedding timing.
#[derive(Debug)]
pub struct HybridParallelTrainer {
    model: DlrmModel,
    simulator: EmbeddingOpSimulator,
    sample_gen: SampleGenerator,
    dense_time_ms: f64,
    simulated_batch: usize,
    rng: rand::rngs::StdRng,
    steps_run: usize,
}

impl HybridParallelTrainer {
    /// Creates a trainer.
    ///
    /// `dense_time_ms` models the data-parallel (MLP + communication) part of
    /// a step, which sharding does not affect; `simulated_batch` is the
    /// number of samples the memory simulator traces per step.
    pub fn new(
        model: DlrmModel,
        simulator: EmbeddingOpSimulator,
        sample_gen: SampleGenerator,
        dense_time_ms: f64,
        simulated_batch: usize,
        seed: u64,
    ) -> Self {
        assert!(dense_time_ms >= 0.0, "dense time must be non-negative");
        assert!(simulated_batch > 0, "simulated batch must be non-zero");
        Self {
            model,
            simulator,
            sample_gen,
            dense_time_ms,
            simulated_batch,
            rng: rand::rngs::StdRng::seed_from_u64(seed),
            steps_run: 0,
        }
    }

    /// Number of training steps run so far.
    pub fn steps_run(&self) -> usize {
        self.steps_run
    }

    /// The underlying numeric model.
    pub fn model(&self) -> &DlrmModel {
        &self.model
    }

    /// Runs one training step on `numeric_batch` freshly drawn samples,
    /// labelling each sample with a synthetic CTR rule (label 1 when the
    /// first dense feature exceeds 0.5).
    pub fn step(&mut self, numeric_batch: usize, learning_rate: f32) -> TrainingStepReport {
        assert!(numeric_batch > 0, "numeric batch must be non-zero");
        // Real numerics on the small model.
        let sparse = self.sample_gen.batch(numeric_batch);
        let dense: Vec<Vec<f32>> = (0..numeric_batch)
            .map(|i| {
                let x = (i as f32 * 0.37 + self.steps_run as f32 * 0.11).fract();
                vec![x; self.model.config().dense_dim]
            })
            .collect();
        let labels: Vec<f32> = dense
            .iter()
            .map(|d| if d[0] > 0.5 { 1.0 } else { 0.0 })
            .collect();
        let loss = self
            .model
            .train_step(&dense, &sparse, &labels, learning_rate);

        // Simulated production-scale embedding time for the sharding plan.
        let report = self
            .simulator
            .run_iteration(self.simulated_batch, &mut self.rng);
        self.steps_run += 1;
        TrainingStepReport {
            loss,
            embedding_time_ms: report.iteration_time_ms(),
            dense_time_ms: self.dense_time_ms,
        }
    }

    /// Runs `steps` training steps and returns the per-step reports.
    pub fn run(
        &mut self,
        steps: usize,
        numeric_batch: usize,
        learning_rate: f32,
    ) -> Vec<TrainingStepReport> {
        (0..steps)
            .map(|_| self.step(numeric_batch, learning_rate))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DlrmConfig, DlrmModel};
    use recshard_data::ModelSpec;
    use recshard_memsim::SimConfig;
    use recshard_sharding::{GreedySharder, SizeCost, SystemSpec};
    use recshard_stats::DatasetProfiler;

    fn build_trainer() -> HybridParallelTrainer {
        let spec = ModelSpec::small(4, 6).scaled(32);
        let emb_dim = spec.features()[0].embedding_dim as usize;
        let dlrm = DlrmModel::new(&spec, &DlrmConfig::new(4, vec![8, emb_dim], vec![8, 1]), 3);
        let profile = DatasetProfiler::profile_model(&spec, 800, 5);
        let system = SystemSpec::uniform(2, spec.total_bytes(), spec.total_bytes(), 1555.0, 16.0);
        let plan = GreedySharder::new(SizeCost)
            .shard(&spec, &profile, &system)
            .unwrap();
        let sim = EmbeddingOpSimulator::new(&spec, &plan, &profile, &system, SimConfig::default());
        let gen = SampleGenerator::new(&spec, 9);
        HybridParallelTrainer::new(dlrm, sim, gen, 5.0, 32, 11)
    }

    #[test]
    fn step_reports_are_consistent() {
        let mut trainer = build_trainer();
        let report = trainer.step(16, 0.05);
        assert!(report.loss.is_finite() && report.loss >= 0.0);
        assert!(report.embedding_time_ms >= 0.0);
        assert!((report.step_time_ms() - (report.embedding_time_ms + 5.0)).abs() < 1e-9);
        assert!((0.0..=1.0).contains(&report.embedding_fraction()));
        assert_eq!(trainer.steps_run(), 1);
    }

    #[test]
    fn multi_step_training_learns_the_dense_rule() {
        let mut trainer = build_trainer();
        let reports = trainer.run(25, 32, 0.1);
        assert_eq!(reports.len(), 25);
        let first: f32 = reports[..5].iter().map(|r| r.loss).sum::<f32>() / 5.0;
        let last: f32 = reports[20..].iter().map(|r| r.loss).sum::<f32>() / 5.0;
        assert!(
            last <= first * 1.05,
            "loss should not increase: first {first}, last {last}"
        );
    }
}
