//! Property-based tests for the RecShard solvers: capacity safety, plan
//! validity, exactness of the branch-and-bound against brute-force
//! enumeration, and warm-start/cold-start equivalence.

use proptest::prelude::*;
use recshard::cost::TableCostModel;
use recshard::{MilpFormulation, RecShard, RecShardConfig, StructuredSolver};
use recshard_data::ModelSpec;
use recshard_milp::SolveOptions;
use recshard_sharding::{GreedySharder, SizeLookupCost, SystemSpec};
use recshard_stats::{DatasetProfile, DatasetProfiler};

/// Exhaustive optimum of the placement problem over the MILP's decision
/// space: every (GPU, ICDF step) combination per table, per-GPU HBM/DRAM
/// capacities enforced, objective = max per-GPU cost sum. `None` when no
/// combination is feasible.
fn brute_force_optimum(costs: &[TableCostModel], system: &SystemSpec) -> Option<f64> {
    let m = system.num_gpus();
    let mut best: Option<f64> = None;
    // Mixed-radix counter over (gpu, step) per table.
    let radices: Vec<(usize, usize)> = costs.iter().map(|c| (m, c.options.len())).collect();
    let total: u64 = radices.iter().map(|&(g, s)| (g * s) as u64).product();
    for combo in 0..total {
        let mut rem = combo;
        let mut hbm = vec![0u64; m];
        let mut dram = vec![0u64; m];
        let mut cost = vec![0.0f64; m];
        let mut feasible = true;
        for (t, &(gr, sr)) in radices.iter().enumerate() {
            let pick = (rem % (gr * sr) as u64) as usize;
            rem /= (gr * sr) as u64;
            let (gpu, step) = (pick % gr, pick / gr);
            let opt = &costs[t].options[step];
            hbm[gpu] += opt.hbm_bytes;
            dram[gpu] += opt.uvm_bytes;
            cost[gpu] += opt.weighted_cost;
            if hbm[gpu] > system.hbm_capacity(gpu) || dram[gpu] > system.dram_capacity(gpu) {
                feasible = false;
                break;
            }
        }
        if !feasible {
            continue;
        }
        let makespan = cost.into_iter().fold(0.0f64, f64::max);
        if best.map(|b| makespan < b).unwrap_or(true) {
            best = Some(makespan);
        }
    }
    best
}

fn tiny_instance(
    tables: usize,
    seed: u64,
    hbm_denominator: u64,
) -> (ModelSpec, DatasetProfile, SystemSpec) {
    let model = ModelSpec::small(tables, seed).with_batch_size(64);
    let profile = DatasetProfiler::profile_model(&model, 600, seed ^ 0xB00);
    let system = SystemSpec::uniform(
        2,
        (model.total_bytes() / hbm_denominator).max(1),
        model.total_bytes() * 2,
        1555.0,
        16.0,
    );
    (model, profile, system)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whenever the solver returns a plan it is structurally valid, within
    /// per-GPU capacities, and covers every table exactly once.
    #[test]
    fn plans_are_always_capacity_safe(
        n_tables in 2usize..14,
        seed in 0u64..500,
        gpus in 1usize..5,
        hbm_denominator in 1u64..16,
        dram_multiplier in 1u64..4,
    ) {
        let model = ModelSpec::small(n_tables, seed);
        let profile = DatasetProfiler::profile_model(&model, 400, seed ^ 0xBEEF);
        let system = SystemSpec::uniform(
            gpus,
            (model.total_bytes() / (gpus as u64 * hbm_denominator)).max(1),
            model.total_bytes() * dram_multiplier,
            1555.0,
            16.0,
        );
        match RecShard::new(RecShardConfig::default()).plan(&model, &profile, &system) {
            Ok(plan) => {
                prop_assert!(plan.validate(&model, &system).is_ok());
                prop_assert_eq!(plan.placements().len(), model.num_features());
                // Hot-row budget never exceeds the table.
                for p in plan.placements() {
                    prop_assert!(p.hbm_rows <= p.total_rows);
                }
            }
            Err(_) => {
                // Rejection is only acceptable when the model genuinely does
                // not fit the system.
                prop_assert!(model.total_bytes() > system.total_capacity() / 2);
            }
        }
    }

    /// The solver's own objective never improves when HBM shrinks (with DRAM
    /// held constant): less fast memory can only hurt.
    #[test]
    fn objective_monotone_in_hbm_capacity(n_tables in 3usize..10, seed in 0u64..300) {
        let model = ModelSpec::small(n_tables, seed);
        let profile = DatasetProfiler::profile_model(&model, 500, seed);
        let solver = StructuredSolver::new(RecShardConfig::default());
        let mut prev = 0.0f64;
        for denom in [1u64, 3, 6, 12] {
            let system = SystemSpec::uniform(
                2,
                (model.total_bytes() / denom).max(1),
                model.total_bytes() * 2,
                1555.0,
                16.0,
            );
            let plan = solver.solve(&model, &profile, &system).unwrap();
            let obj = solver
                .gpu_costs(&model, &profile, &system, &plan)
                .into_iter()
                .fold(0.0f64, f64::max);
            prop_assert!(obj + 1e-9 >= prev, "objective fell from {prev} to {obj} as HBM shrank");
            prev = obj;
        }
    }

    /// On randomized small instances the warm-started branch-and-bound's
    /// optimum equals the brute-force enumeration optimum over the same
    /// decision space, and never exceeds the greedy baseline's cost.
    #[test]
    fn exact_milp_matches_brute_force_and_beats_greedy(
        n_tables in 2usize..5,
        seed in 0u64..150,
        hbm_denominator in 3u64..8,
    ) {
        let (model, profile, system) = tiny_instance(n_tables, seed, hbm_denominator);
        let config = RecShardConfig::default().with_icdf_steps(3);
        let formulation = MilpFormulation::new(config);
        let (_, _, costs) = formulation.build(&model, &profile, &system).unwrap();

        let brute = brute_force_optimum(&costs, &system);
        match formulation.optimal_objective(&model, &profile, &system) {
            Ok(exact) => {
                let brute = brute.expect("MILP feasible implies enumeration feasible");
                prop_assert!(
                    (exact - brute).abs() <= 1e-6 * brute.max(1.0),
                    "B&B optimum {exact} != brute force {brute}"
                );
                // The greedy baseline's plan is a feasible point of the same
                // space (ample DRAM), so the optimum can never exceed its cost.
                if let Ok(greedy) = GreedySharder::new(SizeLookupCost).shard(&model, &profile, &system) {
                    let solver = StructuredSolver::new(config);
                    let greedy_cost = solver
                        .gpu_costs(&model, &profile, &system, &greedy)
                        .into_iter()
                        .fold(0.0f64, f64::max);
                    prop_assert!(
                        exact <= greedy_cost + 1e-9,
                        "exact optimum {exact} exceeds greedy cost {greedy_cost}"
                    );
                }
            }
            Err(_) => prop_assert!(brute.is_none(), "solver infeasible but enumeration found {brute:?}"),
        }
    }

    /// Warm-started and cold-started branch and bound prove the same
    /// optimum across randomized small instances: equal objective values and
    /// equally-costed valid plans. (Alternate optima — zero-marginal-cost
    /// split ties, GPU symmetry — may decode differently; bit-identical
    /// plans are asserted on the seed experiment configs below, where the
    /// optimum is unique up to GPU relabelling.)
    #[test]
    fn warm_and_cold_started_solves_prove_the_same_optimum(
        n_tables in 2usize..5,
        seed in 0u64..200,
        hbm_denominator in 3u64..8,
    ) {
        let (model, profile, system) = tiny_instance(n_tables, seed, hbm_denominator);
        let config = RecShardConfig::default().with_icdf_steps(4);
        let formulation = MilpFormulation::new(config);
        let warm = formulation.solve_with(&model, &profile, &system, SolveOptions { warm_start: true });
        let cold = formulation.solve_with(&model, &profile, &system, SolveOptions { warm_start: false });
        match (warm, cold) {
            (Ok(w), Ok(c)) => {
                prop_assert!(w.validate(&model, &system).is_ok());
                prop_assert!(c.validate(&model, &system).is_ok());
                let evaluator = StructuredSolver::new(config);
                let cost = |plan| {
                    evaluator
                        .gpu_costs_exact(&model, &profile, &system, plan)
                        .into_iter()
                        .fold(0.0f64, f64::max)
                };
                let (wc, cc) = (cost(&w), cost(&c));
                prop_assert!(
                    (wc - cc).abs() <= 1e-7 * wc.max(1e-12),
                    "warm/cold optima diverged: {wc} vs {cc}"
                );
            }
            (Err(_), Err(_)) => {} // both infeasible is consistent
            (w, c) => prop_assert!(false, "solver outcome diverged: warm {w:?} vs cold {c:?}"),
        }
    }

    /// Remap tables produced by the pipeline cover each table exactly and
    /// agree with the plan's split sizes.
    #[test]
    fn pipeline_remaps_match_plan(n_tables in 2usize..8, seed in 0u64..200) {
        let model = ModelSpec::small(n_tables, seed);
        let system = SystemSpec::uniform(
            2,
            (model.total_bytes() / 5).max(1),
            model.total_bytes() * 2,
            1555.0,
            16.0,
        );
        if let Ok(out) = RecShard::default().run(&model, &system, 400, seed) {
            for (remap, placement) in out.remap_tables.iter().zip(out.plan.placements()) {
                prop_assert_eq!(remap.total_rows(), placement.total_rows);
                prop_assert_eq!(remap.hbm_rows(), placement.hbm_rows);
            }
        }
    }
}

/// Warm and cold solves decode to the identical plan on every seeded
/// experiment configuration the exact-MILP tests run on (the `tiny_setup`
/// family: batch 128, tight HBM, 6 ICDF steps, seeds 41–48).
#[test]
fn warm_and_cold_agree_on_all_seed_experiment_configs() {
    for seed in 41u64..=48 {
        let tables = 3 + (seed as usize % 3);
        let model = ModelSpec::small(tables, seed).with_batch_size(128);
        let profile = DatasetProfiler::profile_model(&model, 1_500, seed + 9);
        let system = SystemSpec::uniform(
            2,
            model.total_bytes() / 5,
            model.total_bytes() * 2,
            1555.0,
            16.0,
        );
        let formulation = MilpFormulation::new(RecShardConfig::default().with_icdf_steps(6));
        let warm = formulation
            .solve_with(&model, &profile, &system, SolveOptions { warm_start: true })
            .expect("warm solve");
        let cold = formulation
            .solve_with(
                &model,
                &profile,
                &system,
                SolveOptions { warm_start: false },
            )
            .expect("cold solve");
        assert_eq!(warm, cold, "seed {seed}: warm/cold plans diverged");
        warm.validate(&model, &system).expect("plan valid");
    }
}
