//! Figure 9: drift of the average pooling factor of user and content features
//! over a 20-month window.

#![allow(clippy::print_stdout)]
use recshard_data::DriftModel;

fn main() {
    let drift = DriftModel::paper_like();
    println!(
        "# Figure 9: % change in average pooling factor over {} months",
        drift.months()
    );
    println!("| month | user features | content features |");
    println!("|-------|---------------|------------------|");
    for p in drift.trajectory() {
        println!(
            "| {} | {:+.2}% | {:+.2}% |",
            p.month, p.user_pct_change, p.content_pct_change
        );
    }
    println!();
    println!(
        "User features drift steadily upwards (≈+10% by month 20) while content features \
         oscillate — the time-varying memory demand that motivates re-evaluating the sharding \
         as training data evolves (Section 3.5)."
    );
}
