//! Property-based tests for the discrete-event cluster simulator: physical
//! invariants and determinism must hold for arbitrary configurations.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use recshard_data::ModelSpec;
use recshard_des::{
    ArrivalProcess, ClusterConfig, ClusterSimulator, ContentionMode, EventQueue,
    SharedRateResource, SimTime, WORK_UNITS_PER_NS,
};
use recshard_sharding::{GreedySharder, NodeTopology, SizeCost, SystemSpec};
use recshard_stats::DatasetProfiler;

fn run_summary(
    tables: usize,
    gpus: usize,
    iterations: u64,
    batch: usize,
    interval_us: u64,
    seed: u64,
    poisson: bool,
) -> recshard_des::RunSummary {
    run_summary_with_mode(
        tables,
        gpus,
        iterations,
        batch,
        interval_us,
        seed,
        poisson,
        ContentionMode::Fifo,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_summary_with_mode(
    tables: usize,
    gpus: usize,
    iterations: u64,
    batch: usize,
    interval_us: u64,
    seed: u64,
    poisson: bool,
    contention: ContentionMode,
) -> recshard_des::RunSummary {
    let model = ModelSpec::small(tables, seed ^ 0x51);
    let profile = DatasetProfiler::profile_model(&model, 300, seed ^ 0x52);
    let system = SystemSpec::uniform(gpus, u64::MAX / 16, u64::MAX / 16, 1555.0, 16.0);
    let plan = GreedySharder::new(SizeCost)
        .shard(&model, &profile, &system)
        .unwrap();
    // Exercise the two-level fabric whenever the GPU count splits evenly.
    let plan = if gpus.is_multiple_of(2) && contention == ContentionMode::SharedRate {
        plan.with_topology(NodeTopology::new(2, gpus / 2))
    } else {
        plan
    };
    let interval_ms = interval_us as f64 / 1e3;
    let config = ClusterConfig {
        batch_size: batch,
        iterations,
        seed,
        arrival: if poisson {
            ArrivalProcess::Poisson {
                mean_interval_ms: interval_ms,
            }
        } else {
            ArrivalProcess::FixedRate { interval_ms }
        },
        contention,
        ..ClusterConfig::default()
    };
    ClusterSimulator::new(&model, &plan, &profile, &system, config).run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A GPU cannot be busy for longer than virtual time has elapsed, no
    /// matter the arrival process, load level or seed.
    #[test]
    fn busy_time_bounded_by_elapsed_time(
        tables in 2usize..8,
        gpus in 2usize..5,
        iterations in 10u64..60,
        batch in 4usize..32,
        interval_us in 0u64..4_000,
        seed in any::<u64>(),
    ) {
        let s = run_summary(tables, gpus, iterations, batch, interval_us, seed, false);
        prop_assert_eq!(s.completed, iterations);
        for (gpu, &busy_ms) in s.per_gpu_busy_ms.iter().enumerate() {
            prop_assert!(
                busy_ms <= s.makespan_ms + 1e-9,
                "GPU {} busy {} ms exceeds makespan {} ms", gpu, busy_ms, s.makespan_ms
            );
        }
        prop_assert!(s.p50_ms <= s.p95_ms && s.p95_ms <= s.p99_ms);
    }

    /// Same seed ⇒ identical event log (fingerprint) and identical summary,
    /// for both arrival processes.
    #[test]
    fn identical_seed_replays_identical_event_log(
        tables in 2usize..6,
        gpus in 2usize..4,
        iterations in 5u64..40,
        batch in 4usize..24,
        interval_us in 1u64..3_000,
        seed in any::<u64>(),
        poisson in any::<bool>(),
    ) {
        let a = run_summary(tables, gpus, iterations, batch, interval_us, seed, poisson);
        let b = run_summary(tables, gpus, iterations, batch, interval_us, seed, poisson);
        prop_assert_eq!(a, b);
    }

    /// The engine pops events in nondecreasing time order with FIFO
    /// tie-breaking, for arbitrary schedules.
    #[test]
    fn engine_orders_arbitrary_schedules(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some(ev) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(ev.time >= lt, "time went backwards");
                if ev.time == lt {
                    // Same timestamp: scheduling order (== payload order here).
                    prop_assert!(ev.event > li, "FIFO tie-break violated");
                }
            }
            last = Some((ev.time, ev.event));
        }
        prop_assert_eq!(q.processed(), times.len() as u64);
    }

    /// A shared-rate link conserves work across arbitrary tenancy changes:
    /// once drained, the units it served equal the units admitted, every
    /// transfer's sojourn is at least its solo service time, and completions
    /// pop in nondecreasing completion-time order.
    #[test]
    fn shared_rate_link_conserves_served_work(
        jobs in prop::collection::vec((0u64..5_000, 0u64..2_000), 1..40),
    ) {
        let mut link: SharedRateResource<usize> = SharedRateResource::new();
        let mut now = 0u64;
        let mut completed = Vec::new();
        for (i, &(gap_ns, work_ns)) in jobs.iter().enumerate() {
            now += gap_ns;
            completed.extend(link.advance(now));
            link.admit(now, work_ns, i);
        }
        // Drain: follow the link's own projections to the end.
        while let Some(delay) = link.next_completion_delay() {
            now += delay;
            completed.extend(link.advance(now));
        }
        prop_assert!(link.is_idle());
        prop_assert_eq!(completed.len(), jobs.len());
        prop_assert_eq!(link.served_units(), link.admitted_units());
        prop_assert_eq!(
            link.admitted_units(),
            jobs.iter().map(|&(_, w)| w as u128 * WORK_UNITS_PER_NS as u128).sum::<u128>()
        );
        let mut last_done = 0u64;
        for done in &completed {
            prop_assert!(done.elapsed_ns() >= done.work_ns,
                "sharing can only stretch a transfer ({} < {})",
                done.elapsed_ns(), done.work_ns);
            prop_assert!(done.completed_ns >= last_done, "completions must be ordered");
            last_done = done.completed_ns;
        }
    }

    /// Identical seeds replay bit-identical summaries (fingerprint included)
    /// with shared-rate contention enabled, over flat and two-level fabrics.
    #[test]
    fn contention_enabled_replay_is_bit_identical(
        tables in 2usize..6,
        gpus in 2usize..5,
        iterations in 5u64..30,
        batch in 4usize..24,
        interval_us in 1u64..3_000,
        seed in any::<u64>(),
        poisson in any::<bool>(),
    ) {
        let a = run_summary_with_mode(
            tables, gpus, iterations, batch, interval_us, seed, poisson,
            ContentionMode::SharedRate,
        );
        let b = run_summary_with_mode(
            tables, gpus, iterations, batch, interval_us, seed, poisson,
            ContentionMode::SharedRate,
        );
        prop_assert_eq!(a.completed, iterations);
        prop_assert_eq!(a, b);
    }

    /// Drawing arrival gaps never panics or hangs, even for degenerate
    /// intervals (negative, zero, huge, NaN, infinite): the draw clamps to a
    /// finite gap and `validate` flags the bad configurations up front.
    #[test]
    fn arrival_gap_draw_never_panics(
        raw in prop::num::f64::ANY,
        seed in any::<u64>(),
        poisson in any::<bool>(),
    ) {
        let arrival = if poisson {
            ArrivalProcess::Poisson { mean_interval_ms: raw }
        } else {
            ArrivalProcess::FixedRate { interval_ms: raw }
        };
        let mut rng = StdRng::seed_from_u64(seed);
        // Either outcome is fine; it must simply not panic.
        let _ = arrival.validate();
        let gap = arrival.next_gap_ns(&mut rng);
        if raw.is_nan() || raw <= 0.0 {
            prop_assert_eq!(gap, 0, "degenerate intervals clamp to zero gap");
        }
    }
}
