//! Per-row access frequency accumulation.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Access counts per embedding row (post-hash), for one table.
///
/// Only rows that were actually accessed are stored; the (typically large)
/// remainder of the hash space implicitly has count zero, which is exactly
/// the under-utilisation RecShard exploits (Section 3.4).
///
/// Counts live in a `BTreeMap` so that [`iter`](Self::iter) yields rows in
/// ascending order: frequency maps feed table fingerprints and sampled-CDF
/// construction, and an ordered walk keeps those paths bit-deterministic
/// without a sort-before-emit at every call site.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FrequencyMap {
    counts: BTreeMap<u64, u64>,
    total: u64,
}

impl FrequencyMap {
    /// Creates an empty frequency map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one access to `row`.
    #[inline]
    pub fn record(&mut self, row: u64) {
        *self.counts.entry(row).or_insert(0) += 1;
        self.total += 1;
    }

    /// Records `n` accesses to `row`.
    pub fn record_n(&mut self, row: u64, n: u64) {
        if n == 0 {
            return;
        }
        *self.counts.entry(row).or_insert(0) += n;
        self.total += n;
    }

    /// Records one access to each row in the slice.
    pub fn record_all(&mut self, rows: &[u64]) {
        for &r in rows {
            self.record(r);
        }
    }

    /// Total number of recorded accesses.
    pub fn total_accesses(&self) -> u64 {
        self.total
    }

    /// Number of distinct rows accessed at least once.
    pub fn distinct_rows(&self) -> u64 {
        self.counts.len() as u64
    }

    /// Access count of a specific row (zero when never accessed).
    pub fn count(&self, row: u64) -> u64 {
        self.counts.get(&row).copied().unwrap_or(0)
    }

    /// Iterates over `(row, count)` pairs in ascending row order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&r, &c)| (r, c))
    }

    /// Merges another frequency map into this one.
    pub fn merge(&mut self, other: &FrequencyMap) {
        for (&row, &count) in &other.counts {
            *self.counts.entry(row).or_insert(0) += count;
        }
        self.total += other.total;
    }

    /// Returns rows sorted by descending access count (ties broken by row id
    /// for determinism). The hottest row comes first.
    pub fn ranked_rows(&self) -> Vec<u64> {
        let mut rows: Vec<(u64, u64)> = self.counts.iter().map(|(&r, &c)| (r, c)).collect();
        rows.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rows.into_iter().map(|(r, _)| r).collect()
    }

    /// Returns access counts sorted descending (aligned with
    /// [`ranked_rows`](Self::ranked_rows)).
    pub fn ranked_counts(&self) -> Vec<u64> {
        let mut counts: Vec<u64> = self.counts.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        counts
    }

    /// True when no accesses have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }
}

impl FromIterator<u64> for FrequencyMap {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut map = FrequencyMap::new();
        for row in iter {
            map.record(row);
        }
        map
    }
}

impl Extend<u64> for FrequencyMap {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for row in iter {
            self.record(row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_count() {
        let mut m = FrequencyMap::new();
        m.record(3);
        m.record(3);
        m.record(7);
        assert_eq!(m.count(3), 2);
        assert_eq!(m.count(7), 1);
        assert_eq!(m.count(99), 0);
        assert_eq!(m.total_accesses(), 3);
        assert_eq!(m.distinct_rows(), 2);
    }

    #[test]
    fn ranked_rows_descending_with_deterministic_ties() {
        let mut m = FrequencyMap::new();
        m.record_n(10, 5);
        m.record_n(20, 5);
        m.record_n(30, 9);
        m.record_n(40, 1);
        assert_eq!(m.ranked_rows(), vec![30, 10, 20, 40]);
        assert_eq!(m.ranked_counts(), vec![9, 5, 5, 1]);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a: FrequencyMap = [1u64, 2, 2].into_iter().collect();
        let b: FrequencyMap = [2u64, 3].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count(2), 3);
        assert_eq!(a.count(3), 1);
        assert_eq!(a.total_accesses(), 5);
    }

    #[test]
    fn extend_and_from_iterator() {
        let mut m: FrequencyMap = (0u64..10).collect();
        m.extend(0u64..5);
        assert_eq!(m.total_accesses(), 15);
        assert_eq!(m.distinct_rows(), 10);
    }

    #[test]
    fn record_n_zero_is_noop() {
        let mut m = FrequencyMap::new();
        m.record_n(1, 0);
        assert!(m.is_empty());
        assert_eq!(m.distinct_rows(), 0);
    }
}
