//! Criterion bench for Section 6.6: RecShard partitioning/placement solve
//! time (structured solver at full 397-table width, exact MILP on a small
//! instance) as a function of GPU count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use recshard::{RecShard, RecShardConfig};
use recshard_bench::ExperimentConfig;
use recshard_data::{ModelSpec, RmKind};
use recshard_sharding::SystemSpec;
use recshard_stats::DatasetProfiler;

fn solver_overhead(c: &mut Criterion) {
    let cfg = ExperimentConfig {
        profile_samples: 1_500,
        ..ExperimentConfig::fast()
    };
    let model = cfg.model(RmKind::Rm2);
    let profile = DatasetProfiler::profile_model(&model, cfg.profile_samples, cfg.seed);

    let mut group = c.benchmark_group("solver_overhead");
    group.sample_size(10);
    for gpus in [8usize, 16, 32] {
        let system = SystemSpec::paper_with_gpus(gpus).scaled(cfg.scale);
        group.bench_with_input(
            BenchmarkId::new("structured_397_tables", gpus),
            &gpus,
            |b, _| {
                let sharder = RecShard::new(RecShardConfig::default());
                b.iter(|| sharder.plan(&model, &profile, &system).expect("plan"));
            },
        );
    }

    // The exact MILP only on a tiny instance (ground-truth path).
    let small = ModelSpec::small(4, 9).with_batch_size(128);
    let small_profile = DatasetProfiler::profile_model(&small, 800, 3);
    let small_system = SystemSpec::uniform(
        2,
        small.total_bytes() / 4,
        small.total_bytes() * 2,
        1555.0,
        16.0,
    );
    group.bench_function("exact_milp_4_tables_2_gpus", |b| {
        let sharder = RecShard::new(
            RecShardConfig::default()
                .with_exact_milp()
                .with_icdf_steps(5),
        );
        b.iter(|| {
            sharder
                .plan(&small, &small_profile, &small_system)
                .expect("plan")
        });
    });
    group.finish();
}

criterion_group!(benches, solver_overhead);
criterion_main!(benches);
