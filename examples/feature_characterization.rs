//! Sparse-feature characterisation (Section 3 of the paper): skewed value
//! distributions, pooling factors, coverage, hashing losses and temporal
//! drift — the statistics RecShard's placement decisions are built on.
//!
//! Run with `cargo run --release -p recshard-bench --example feature_characterization`.

#![allow(clippy::print_stdout)]
use recshard::hash_size_sweep;
use recshard_data::{DriftModel, FeatureClass, ModelSpec};
use recshard_stats::DatasetProfiler;

fn main() {
    let model = ModelSpec::rm1().scaled(4_096);
    let profile = DatasetProfiler::profile_model(&model, 3_000, 11);

    // 3.1: skewed categorical distributions.
    let mut head_shares: Vec<f64> = profile
        .profiles()
        .iter()
        .filter(|p| p.total_lookups > 200)
        .map(|p| p.cdf.top_percent_share(10.0))
        .collect();
    head_shares.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!("== 3.1 value-frequency skew ==");
    println!(
        "top-10%-of-rows access share across {} features: median {:.0}%, max {:.0}%, min {:.0}%",
        head_shares.len(),
        head_shares[head_shares.len() / 2] * 100.0,
        head_shares.last().unwrap() * 100.0,
        head_shares.first().unwrap() * 100.0
    );

    // 3.2 + 3.3: pooling factors and coverage.
    let max_pool = profile
        .profiles()
        .iter()
        .map(|p| p.avg_pooling)
        .fold(0.0f64, f64::max);
    let min_cov = profile
        .profiles()
        .iter()
        .map(|p| p.coverage)
        .fold(1.0f64, f64::min);
    println!();
    println!("== 3.2/3.3 pooling factor and coverage ==");
    println!("average pooling factors span 1 .. {max_pool:.0}; coverage spans {min_cov:.3} .. 1.0");

    // 3.4: hashing under-utilisation.
    println!();
    println!("== 3.4 hashing and the birthday paradox ==");
    for p in hash_size_sweep(50_000, 1.0, 8.0, 4, 3) {
        println!(
            "hash size {:.0}x cardinality -> {:.0}% of the table unused",
            p.size_multiple,
            p.sparsity * 100.0
        );
    }

    // 3.5: drift over time.
    println!();
    println!("== 3.5 temporal drift ==");
    let drift = DriftModel::paper_like();
    println!(
        "after 20 months the average pooling factor of user features grows {:+.1}% while content \
         features sit at {:+.1}% — re-sharding should be re-evaluated as data evolves",
        drift.pct_change(FeatureClass::User, 20),
        drift.pct_change(FeatureClass::Content, 20)
    );
}
