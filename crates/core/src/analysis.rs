//! Plan comparison and speedup reporting helpers (Tables 3, 4 and Figure 11/13).

use recshard_sharding::ShardingPlan;
use recshard_stats::Summary;
use serde::{Deserialize, Serialize};

/// Pairwise comparison of two plans over the same model (Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlanComparison {
    /// Fraction of rows the baseline placed in UVM that the subject plan
    /// promotes to HBM ("UVM->HBM" in Table 4).
    pub uvm_to_hbm: f64,
    /// Fraction of rows the baseline placed in HBM that the subject plan
    /// demotes to UVM ("HBM->UVM" in Table 4).
    pub hbm_to_uvm: f64,
}

impl PlanComparison {
    /// Compares `subject` (typically RecShard) against `baseline`.
    pub fn between(subject: &ShardingPlan, baseline: &ShardingPlan) -> Self {
        let (uvm_to_hbm, hbm_to_uvm) = subject.placement_disparity(baseline);
        Self {
            uvm_to_hbm,
            hbm_to_uvm,
        }
    }
}

/// Per-strategy timing results and the derived speedups (Figure 11 / Table 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeedupReport {
    entries: Vec<(String, Summary)>,
}

impl SpeedupReport {
    /// Builds a report from `(strategy name, per-GPU iteration-time summary)`
    /// pairs.
    pub fn new(entries: Vec<(String, Summary)>) -> Self {
        assert!(
            !entries.is_empty(),
            "a speedup report needs at least one strategy"
        );
        Self { entries }
    }

    /// The raw entries.
    pub fn entries(&self) -> &[(String, Summary)] {
        &self.entries
    }

    /// Iteration time of a strategy (the max across GPUs — training is bound
    /// by the slowest trainer).
    pub fn iteration_time(&self, strategy: &str) -> Option<f64> {
        self.entries
            .iter()
            .find(|(s, _)| s == strategy)
            .map(|(_, t)| t.max)
    }

    /// The slowest strategy's iteration time (the normalisation denominator
    /// Figure 11 uses).
    pub fn slowest_time(&self) -> f64 {
        self.entries
            .iter()
            .map(|(_, t)| t.max)
            .fold(f64::MIN, f64::max)
    }

    /// Speedup of each strategy relative to the slowest strategy in the group
    /// (exactly Figure 11's y-axis).
    pub fn speedups_vs_slowest(&self) -> Vec<(String, f64)> {
        let slowest = self.slowest_time();
        self.entries
            .iter()
            .map(|(s, t)| (s.clone(), slowest / t.max))
            .collect()
    }

    /// Speedup of `subject` relative to the *fastest of the other strategies*
    /// (the "next fastest" comparison the paper quotes: 2.58x/5.26x/7.41x).
    pub fn speedup_vs_next_fastest(&self, subject: &str) -> Option<f64> {
        let subject_time = self.iteration_time(subject)?;
        let next_fastest = self
            .entries
            .iter()
            .filter(|(s, _)| s != subject)
            .map(|(_, t)| t.max)
            .fold(f64::INFINITY, f64::min);
        if next_fastest.is_infinite() {
            return None;
        }
        Some(next_fastest / subject_time)
    }

    /// Load-balance improvement of `subject` over the best (smallest) other
    /// strategy's standard deviation, as quoted in the abstract (>12x).
    pub fn load_balance_improvement(&self, subject: &str) -> Option<f64> {
        let subject_std = self
            .entries
            .iter()
            .find(|(s, _)| s == subject)
            .map(|(_, t)| t.std_dev)?;
        let best_other = self
            .entries
            .iter()
            .filter(|(s, _)| s != subject)
            .map(|(_, t)| t.std_dev)
            .fold(f64::INFINITY, f64::min);
        if best_other.is_infinite() || subject_std == 0.0 {
            return None;
        }
        Some(best_other / subject_std)
    }
}

/// Amdahl's-law end-to-end speedup estimate (Section 6.4): with fraction `p`
/// of total execution time spent in critical-path embedding operations and an
/// embedding speedup of `s`, the end-to-end speedup is `1 / ((1-p) + p/s)`.
pub fn amdahl_end_to_end_speedup(embedding_fraction: f64, embedding_speedup: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&embedding_fraction),
        "embedding fraction must be in [0, 1]"
    );
    assert!(embedding_speedup > 0.0, "speedup must be positive");
    1.0 / ((1.0 - embedding_fraction) + embedding_fraction / embedding_speedup)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(max: f64, std: f64) -> Summary {
        Summary {
            count: 16,
            min: max / 2.0,
            max,
            mean: max * 0.75,
            std_dev: std,
        }
    }

    #[test]
    fn speedups_normalised_to_slowest() {
        let report = SpeedupReport::new(vec![
            ("size".into(), summary(20.0, 5.0)),
            ("lookup".into(), summary(40.0, 9.0)),
            ("recshard".into(), summary(8.0, 0.5)),
        ]);
        let speedups: std::collections::HashMap<_, _> =
            report.speedups_vs_slowest().into_iter().collect();
        assert!((speedups["lookup"] - 1.0).abs() < 1e-12);
        assert!((speedups["size"] - 2.0).abs() < 1e-12);
        assert!((speedups["recshard"] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn next_fastest_comparison() {
        let report = SpeedupReport::new(vec![
            ("size".into(), summary(20.0, 5.0)),
            ("lookup".into(), summary(40.0, 9.0)),
            ("recshard".into(), summary(8.0, 0.5)),
        ]);
        // Next fastest after recshard is size at 20ms → 2.5x.
        assert!((report.speedup_vs_next_fastest("recshard").unwrap() - 2.5).abs() < 1e-12);
        assert!((report.load_balance_improvement("recshard").unwrap() - 10.0).abs() < 1e-12);
        assert_eq!(report.iteration_time("nope"), None);
    }

    #[test]
    fn amdahl_matches_paper_range() {
        // Paper: 35–75% embedding share at 2.5x embedding speedup → 1.27–1.82x.
        let low = amdahl_end_to_end_speedup(0.35, 2.5);
        let high = amdahl_end_to_end_speedup(0.75, 2.5);
        assert!((low - 1.27).abs() < 0.01, "got {low}");
        assert!((high - 1.82).abs() < 0.01, "got {high}");
        // Degenerate cases.
        assert_eq!(amdahl_end_to_end_speedup(0.0, 10.0), 1.0);
        assert!((amdahl_end_to_end_speedup(1.0, 10.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn plan_comparison_wraps_disparity() {
        use recshard_data::ModelSpec;
        use recshard_sharding::TablePlacement;
        let model = ModelSpec::small(2, 3);
        let mk = |rows: &[u64]| {
            let placements = model
                .features()
                .iter()
                .zip(rows)
                .map(|(f, &h)| TablePlacement {
                    table: f.id,
                    gpu: 0,
                    hbm_rows: h.min(f.hash_size),
                    total_rows: f.hash_size,
                    row_bytes: f.row_bytes(),
                })
                .collect();
            ShardingPlan::new("x", 1, placements)
        };
        let a = mk(&[u64::MAX, u64::MAX]);
        let b = mk(&[0, 0]);
        let cmp = PlanComparison::between(&a, &b);
        assert!((cmp.uvm_to_hbm - 1.0).abs() < 1e-12);
        assert_eq!(cmp.hbm_to_uvm, 0.0);
    }

    #[test]
    #[should_panic(expected = "a speedup report needs at least one strategy")]
    fn empty_report_rejected() {
        let _ = SpeedupReport::new(vec![]);
    }
}
