//! Best-first branch and bound over LP relaxations.
//!
//! Each node's relaxation is solved with the sparse bounded-variable dual
//! simplex ([`crate::sparse`]) warm-started from its parent's optimal basis —
//! a child differs from its parent in exactly one variable bound, so the
//! parent basis stays dual feasible and re-optimisation takes a handful of
//! pivots. Models outside the sparse solver's dual-feasible-start scope (a
//! variable whose cost sign demands an infinite bound) fall back to the dense
//! Big-M tableau per node, preserving the old behaviour.

use crate::error::MilpError;
use crate::model::{Model, Sense, VarKind};
use crate::simplex::{LpProblem, EPS};
use crate::solution::{Solution, SolveStats, Status};
use crate::sparse::{BasisSnapshot, SparseLp};
use recshard_obs::{ObsHandle, PruneReason, TraceEvent};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::rc::Rc;

/// Integrality tolerance: values within this distance of an integer are
/// treated as integral.
const INT_TOL: f64 = 1e-6;

/// Knobs of the branch-and-bound driver (see [`Model::solve_with`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveOptions {
    /// Warm-start each node's dual simplex from the parent's optimal basis.
    /// Disabling re-solves every node from the all-slack basis; the explored
    /// tree and the returned solution are the same, only slower — the knob
    /// exists so tests can assert exactly that equivalence.
    pub warm_start: bool,
}

impl Default for SolveOptions {
    fn default() -> Self {
        Self { warm_start: true }
    }
}

struct Node {
    /// Creation-order id, stable across runs; only used for trace events.
    id: u64,
    /// LP relaxation bound of this node in *minimization* form (lower bound on
    /// any integer solution in the subtree).
    bound: f64,
    lower: Vec<f64>,
    upper: Vec<f64>,
    /// Parent's optimal basis for the dual-simplex warm start.
    basis: Option<Rc<BasisSnapshot>>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; we want the node with the *smallest*
        // minimization bound first (best-first search).
        other
            .bound
            .partial_cmp(&self.bound)
            .unwrap_or(Ordering::Equal)
    }
}

/// One node's relaxation result, backend-independent.
struct NodeLp {
    objective: f64,
    values: Vec<f64>,
    pivots: usize,
    /// Basis refactorisations (0 on the dense fallback, which has none).
    refactorizations: usize,
    basis: Option<Rc<BasisSnapshot>>,
}

/// Branch-and-bound driver for a [`Model`].
pub struct BranchAndBound<'a> {
    model: &'a Model,
    sparse: Option<SparseLp>,
    options: SolveOptions,
}

impl<'a> BranchAndBound<'a> {
    /// Creates a driver for the model with default options.
    pub fn new(model: &'a Model) -> Self {
        Self::with_options(model, SolveOptions::default())
    }

    /// Creates a driver with explicit options.
    pub fn with_options(model: &'a Model, options: SolveOptions) -> Self {
        Self {
            model,
            sparse: SparseLp::try_new(model),
            options,
        }
    }

    /// Solves one node's LP relaxation: sparse dual simplex (warm-started
    /// when a parent basis is available and warm starts are enabled), dense
    /// Big-M tableau otherwise or on numerical failure.
    fn solve_node(
        &self,
        lower: &[f64],
        upper: &[f64],
        parent: Option<&Rc<BasisSnapshot>>,
    ) -> Result<NodeLp, MilpError> {
        if let Some(sparse) = &self.sparse {
            let warm = parent.filter(|_| self.options.warm_start);
            let attempt = match warm {
                Some(basis) => sparse.solve_warm(lower, upper, basis),
                None => sparse.solve_cold(lower, upper),
            };
            let attempt = match attempt {
                // A numerically failed warm start retries cold before giving
                // up on the sparse path entirely.
                Err(MilpError::InvalidModel(_)) if warm.is_some() => {
                    sparse.solve_cold(lower, upper)
                }
                other => other,
            };
            match attempt {
                Ok(sol) => {
                    return Ok(NodeLp {
                        objective: sol.objective,
                        values: sol.values,
                        pivots: sol.pivots,
                        refactorizations: sol.refactorizations,
                        basis: Some(sol.basis),
                    })
                }
                Err(MilpError::InvalidModel(_)) => {} // fall through to dense
                Err(e) => return Err(e),
            }
        }
        let lp = LpProblem::from_model(self.model, lower.to_vec(), upper.to_vec());
        let sol = lp.solve()?;
        Ok(NodeLp {
            objective: sol.objective,
            values: sol.values,
            pivots: sol.pivots,
            refactorizations: 0,
            basis: None,
        })
    }

    /// Solves the MILP.
    ///
    /// # Errors
    ///
    /// See [`MilpError`].
    pub fn solve(&self) -> Result<Solution, MilpError> {
        self.solve_observed(&mut ObsHandle::noop())
    }

    /// Solves the MILP, emitting [`TraceEvent::LpSolved`], node open / prune /
    /// incumbent events into `obs`. Timestamps are a synthetic tick counter
    /// (branch and bound has no virtual clock); the search itself is
    /// observation-independent.
    ///
    /// # Errors
    ///
    /// See [`MilpError`].
    pub fn solve_observed(&self, obs: &mut ObsHandle<'_>) -> Result<Solution, MilpError> {
        let model = self.model;
        let mut tick: u64 = 0;
        let int_vars: Vec<usize> = model
            .variables()
            .iter()
            .enumerate()
            .filter(|(_, v)| matches!(v.kind, VarKind::Integer | VarKind::Binary))
            .map(|(i, _)| i)
            .collect();

        let root_lower: Vec<f64> = model.variables().iter().map(|v| v.lower).collect();
        let root_upper: Vec<f64> = model.variables().iter().map(|v| v.upper).collect();

        let minimize_sign = if model.sense() == Sense::Maximize {
            -1.0
        } else {
            1.0
        };
        let mut stats = SolveStats::default();

        // Solve the root relaxation first so pure LPs exit immediately.
        let root_sol = self.solve_node(&root_lower, &root_upper, None)?;
        stats.simplex_pivots += root_sol.pivots;
        stats.simplex_refactorizations += root_sol.refactorizations;
        stats.nodes_explored += 1;
        tick += 1;
        obs.record(
            tick,
            TraceEvent::LpSolved {
                node: 0,
                pivots: root_sol.pivots as u64,
                refactorizations: root_sol.refactorizations as u64,
                objective: root_sol.objective,
            },
        );

        if int_vars.is_empty() || Self::fractional_var(&root_sol.values, &int_vars).is_none() {
            let values = Self::snap(&root_sol.values, &int_vars);
            let objective = model.objective_value(&values);
            return Ok(Solution::new(Status::Optimal, objective, values, stats));
        }

        let mut heap = BinaryHeap::new();
        heap.push(Node {
            id: 0,
            bound: minimize_sign * root_sol.objective,
            lower: root_lower,
            upper: root_upper,
            basis: root_sol.basis,
        });
        let mut next_id: u64 = 1;

        let mut incumbent: Option<(f64, Vec<f64>)> = None; // minimization objective, values
        let node_limit = model.node_limit();

        while let Some(node) = heap.pop() {
            if stats.nodes_explored >= node_limit {
                return match incumbent {
                    Some((obj_min, values)) => Ok(Solution::new(
                        Status::Feasible,
                        minimize_sign * obj_min,
                        values,
                        stats,
                    )),
                    None => Err(MilpError::NodeLimit { limit: node_limit }),
                };
            }
            tick += 1;
            obs.record(
                tick,
                TraceEvent::BnbOpen {
                    node: node.id,
                    bound: node.bound,
                },
            );
            // Prune against the incumbent.
            if let Some((best, _)) = &incumbent {
                if node.bound >= *best - 1e-9 {
                    stats.nodes_pruned += 1;
                    tick += 1;
                    obs.record(
                        tick,
                        TraceEvent::BnbPrune {
                            node: node.id,
                            reason: PruneReason::Bound,
                        },
                    );
                    continue;
                }
            }
            let lp_sol = match self.solve_node(&node.lower, &node.upper, node.basis.as_ref()) {
                Ok(s) => s,
                Err(MilpError::Infeasible) => {
                    stats.nodes_pruned += 1;
                    tick += 1;
                    obs.record(
                        tick,
                        TraceEvent::BnbPrune {
                            node: node.id,
                            reason: PruneReason::Infeasible,
                        },
                    );
                    continue;
                }
                Err(e) => return Err(e),
            };
            stats.nodes_explored += 1;
            stats.simplex_pivots += lp_sol.pivots;
            stats.simplex_refactorizations += lp_sol.refactorizations;
            tick += 1;
            obs.record(
                tick,
                TraceEvent::LpSolved {
                    node: node.id,
                    pivots: lp_sol.pivots as u64,
                    refactorizations: lp_sol.refactorizations as u64,
                    objective: lp_sol.objective,
                },
            );
            let bound_min = minimize_sign * lp_sol.objective;
            if let Some((best, _)) = &incumbent {
                if bound_min >= *best - 1e-9 {
                    stats.nodes_pruned += 1;
                    tick += 1;
                    obs.record(
                        tick,
                        TraceEvent::BnbPrune {
                            node: node.id,
                            reason: PruneReason::Bound,
                        },
                    );
                    continue;
                }
            }

            match Self::fractional_var(&lp_sol.values, &int_vars) {
                None => {
                    // Integer-feasible: candidate incumbent.
                    let snapped = Self::snap(&lp_sol.values, &int_vars);
                    let obj_min = minimize_sign * model.objective_value(&snapped);
                    let better = incumbent
                        .as_ref()
                        .map(|(best, _)| obj_min < *best - 1e-12)
                        .unwrap_or(true);
                    if better && model.is_feasible(&snapped, 1e-5) {
                        tick += 1;
                        obs.record(
                            tick,
                            TraceEvent::BnbIncumbent {
                                node: node.id,
                                objective: minimize_sign * obj_min,
                            },
                        );
                        incumbent = Some((obj_min, snapped));
                    }
                }
                Some((var, value)) => {
                    // Branch: var <= floor(value) and var >= ceil(value); both
                    // children inherit this node's optimal basis.
                    let mut down = Node {
                        id: next_id,
                        bound: bound_min,
                        lower: node.lower.clone(),
                        upper: node.upper.clone(),
                        basis: lp_sol.basis.clone(),
                    };
                    next_id += 1;
                    down.upper[var] = value.floor();
                    if down.lower[var] <= down.upper[var] + EPS {
                        heap.push(down);
                    }
                    let mut up = Node {
                        id: next_id,
                        bound: bound_min,
                        lower: node.lower,
                        upper: node.upper,
                        basis: lp_sol.basis,
                    };
                    next_id += 1;
                    up.lower[var] = value.ceil();
                    if up.lower[var] <= up.upper[var] + EPS {
                        heap.push(up);
                    }
                }
            }
        }

        match incumbent {
            Some((obj_min, values)) => Ok(Solution::new(
                Status::Optimal,
                minimize_sign * obj_min,
                values,
                stats,
            )),
            None => Err(MilpError::Infeasible),
        }
    }

    /// Returns the most fractional integer variable, if any.
    fn fractional_var(values: &[f64], int_vars: &[usize]) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64, f64)> = None;
        for &i in int_vars {
            let v = values[i];
            let frac = (v - v.round()).abs();
            if frac > INT_TOL {
                let distance_to_half = (v - v.floor() - 0.5).abs();
                if best.map(|(_, _, d)| distance_to_half < d).unwrap_or(true) {
                    best = Some((i, v, distance_to_half));
                }
            }
        }
        best.map(|(i, v, _)| (i, v))
    }

    /// Rounds integer variables to the nearest integer.
    fn snap(values: &[f64], int_vars: &[usize]) -> Vec<f64> {
        let mut out = values.to_vec();
        for &i in int_vars {
            out[i] = out[i].round();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ConstraintSense;

    #[test]
    fn knapsack_exact() {
        // max 10a + 13b + 7c + 4d, weights 3,4,2,1 <= 7, binary.
        // Optimal: b + c + d = 24 (weight 7);  a + c + d = 21, a + b = 23.
        let mut m = Model::new(Sense::Maximize);
        let vals = [10.0, 13.0, 7.0, 4.0];
        let weights = [3.0, 4.0, 2.0, 1.0];
        let vars: Vec<_> = (0..4)
            .map(|i| m.add_binary(format!("x{i}"), vals[i]))
            .collect();
        m.add_constraint(
            "cap",
            vars.iter().zip(weights).map(|(&v, w)| (v, w)).collect(),
            ConstraintSense::Le,
            7.0,
        );
        let sol = m.solve().unwrap();
        assert_eq!(sol.status(), Status::Optimal);
        assert!(
            (sol.objective() - 24.0).abs() < 1e-6,
            "obj {}",
            sol.objective()
        );
        assert_eq!(sol.value(vars[0]).round() as i64, 0);
        assert_eq!(sol.value(vars[1]).round() as i64, 1);
        assert_eq!(sol.value(vars[2]).round() as i64, 1);
        assert_eq!(sol.value(vars[3]).round() as i64, 1);
    }

    #[test]
    fn integer_rounding_matters() {
        // max x + y s.t. 2x + 2y <= 5, integer → optimum 2 (not 2.5).
        // Unbounded-above integers exercise the dense fallback path.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Integer, 0.0, f64::INFINITY, 1.0);
        let y = m.add_var("y", VarKind::Integer, 0.0, f64::INFINITY, 1.0);
        m.add_constraint("c", vec![(x, 2.0), (y, 2.0)], ConstraintSense::Le, 5.0);
        let sol = m.solve().unwrap();
        assert!((sol.objective() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn pure_lp_passes_through() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 1.0);
        m.add_constraint("c", vec![(x, 1.0)], ConstraintSense::Ge, 2.5);
        let sol = m.solve().unwrap();
        assert!((sol.objective() - 2.5).abs() < 1e-9);
        assert_eq!(sol.stats().nodes_explored, 1);
    }

    #[test]
    fn assignment_problem_min_max_style() {
        // 3 jobs, 2 machines, each job on exactly one machine, minimize the
        // maximum machine load (the RecShard MILP's min-max structure).
        // Costs: 4, 3, 2 → optimal makespan 5 (4+... no: {4,} vs {3,2} = 5; or {4,2}=6/{3}).
        let mut m = Model::new(Sense::Minimize);
        let costs = [4.0, 3.0, 2.0];
        let c = m.add_continuous("C", 1.0);
        let mut assign = Vec::new();
        for j in 0..3 {
            let row: Vec<_> = (0..2)
                .map(|g| m.add_binary(format!("p_{g}_{j}"), 0.0))
                .collect();
            m.add_constraint(
                format!("one_gpu_{j}"),
                row.iter().map(|&v| (v, 1.0)).collect(),
                ConstraintSense::Eq,
                1.0,
            );
            assign.push(row);
        }
        for g in 0..2 {
            let mut terms: Vec<_> = (0..3).map(|j| (assign[j][g], costs[j])).collect();
            terms.push((c, -1.0));
            m.add_constraint(format!("load_{g}"), terms, ConstraintSense::Le, 0.0);
        }
        let sol = m.solve().unwrap();
        assert!(
            (sol.objective() - 5.0).abs() < 1e-6,
            "makespan {}",
            sol.objective()
        );
    }

    #[test]
    fn infeasible_integer_program() {
        // x binary, x >= 0.4, x <= 0.6 → no integer solution.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_binary("x", 1.0);
        m.add_constraint("lo", vec![(x, 1.0)], ConstraintSense::Ge, 0.4);
        m.add_constraint("hi", vec![(x, 1.0)], ConstraintSense::Le, 0.6);
        assert_eq!(m.solve(), Err(MilpError::Infeasible));
    }

    #[test]
    fn equality_partitioned_binaries() {
        // Choose exactly one of three options, maximize value.
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary("a", 1.0);
        let b = m.add_binary("b", 5.0);
        let c = m.add_binary("c", 3.0);
        m.add_constraint(
            "pick1",
            vec![(a, 1.0), (b, 1.0), (c, 1.0)],
            ConstraintSense::Eq,
            1.0,
        );
        let sol = m.solve().unwrap();
        assert!((sol.objective() - 5.0).abs() < 1e-6);
        assert_eq!(sol.value(b).round() as i64, 1);
    }

    #[test]
    fn node_limit_reported() {
        // A hard-ish knapsack with a node limit of 1 and no chance to find an
        // incumbent at the root.
        let mut m = Model::new(Sense::Maximize);
        let n = 12;
        let vars: Vec<_> = (0..n)
            .map(|i| m.add_binary(format!("x{i}"), 1.0 + (i as f64 % 3.0) * 0.37))
            .collect();
        m.add_constraint(
            "cap",
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (v, 1.0 + (i as f64 * 0.77) % 2.0))
                .collect(),
            ConstraintSense::Le,
            3.7,
        );
        m.set_node_limit(1);
        match m.solve() {
            Err(MilpError::NodeLimit { limit }) => assert_eq!(limit, 1),
            Ok(sol) => assert_eq!(sol.status(), Status::Feasible),
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn mixed_integer_and_continuous() {
        // max 2x + 3y, x integer <= 3.7, y continuous <= 2.5, x + y <= 5.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Integer, 0.0, 3.7, 2.0);
        let y = m.add_var("y", VarKind::Continuous, 0.0, 2.5, 3.0);
        m.add_constraint("sum", vec![(x, 1.0), (y, 1.0)], ConstraintSense::Le, 5.0);
        let sol = m.solve().unwrap();
        // x=3 (integer), y=2 → 12; x=2,y=2.5 → 11.5. Optimal 12... but x+y<=5
        // allows x=3,y=2 exactly. Also x=2.5 not allowed.
        assert!(
            (sol.objective() - 12.0).abs() < 1e-6,
            "obj {}",
            sol.objective()
        );
        assert!((sol.value(x) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn observed_solve_is_observation_independent() {
        // Same knapsack as `knapsack_exact`: the traced solve must return the
        // identical solution, and the trace must cover every explored node.
        let mut m = Model::new(Sense::Maximize);
        let vals = [10.0, 13.0, 7.0, 4.0];
        let weights = [3.0, 4.0, 2.0, 1.0];
        let vars: Vec<_> = (0..4)
            .map(|i| m.add_binary(format!("x{i}"), vals[i]))
            .collect();
        m.add_constraint(
            "cap",
            vars.iter().zip(weights).map(|(&v, w)| (v, w)).collect(),
            ConstraintSense::Le,
            7.0,
        );
        let plain = m.solve().unwrap();
        let mut collector = recshard_obs::Collector::new();
        let observed = m
            .solve_observed(
                SolveOptions::default(),
                &mut ObsHandle::attached(&mut collector),
            )
            .unwrap();
        assert_eq!(plain, observed);
        let stats = observed.stats();
        assert!(stats.nodes_explored > 1, "knapsack should branch");
        assert!(
            stats.simplex_refactorizations >= stats.nodes_explored,
            "every sparse node solve refactorizes at least once"
        );
        let bundle = collector.finish();
        let lp_solved = bundle
            .trace
            .records()
            .iter()
            .filter(|r| r.event.name() == "lp_solved")
            .count();
        assert_eq!(lp_solved, stats.nodes_explored);
        let pruned = bundle
            .trace
            .records()
            .iter()
            .filter(|r| r.event.name() == "bnb_prune")
            .count();
        assert_eq!(pruned, stats.nodes_pruned);
    }

    #[test]
    fn warm_and_cold_solves_agree() {
        // A battery of seeded knapsacks: warm-started and cold-started
        // branch and bound must return identical objectives and plans.
        for seed in 0u64..12 {
            let mut m = Model::new(Sense::Maximize);
            let n = 8;
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 1000) as f64 / 100.0 + 0.5
            };
            let vals: Vec<f64> = (0..n).map(|_| next()).collect();
            let weights: Vec<f64> = (0..n).map(|_| next()).collect();
            let vars: Vec<_> = (0..n)
                .map(|i| m.add_binary(format!("x{i}"), vals[i]))
                .collect();
            m.add_constraint(
                "cap",
                vars.iter().zip(&weights).map(|(&v, &w)| (v, w)).collect(),
                ConstraintSense::Le,
                weights.iter().sum::<f64>() / 2.5,
            );
            let warm = m.solve_with(SolveOptions { warm_start: true }).unwrap();
            let cold = m.solve_with(SolveOptions { warm_start: false }).unwrap();
            assert!(
                (warm.objective() - cold.objective()).abs() < 1e-7,
                "seed {seed}: warm {} vs cold {}",
                warm.objective(),
                cold.objective()
            );
            assert_eq!(
                warm.values(),
                cold.values(),
                "seed {seed}: warm/cold solutions diverged"
            );
        }
    }
}
