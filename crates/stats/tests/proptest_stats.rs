//! Property-based tests for the statistics stack: frequency maps, access
//! CDFs and their piece-wise linear inverses.

use proptest::prelude::*;
use recshard_stats::{AccessCdf, FrequencyMap};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Total accesses and distinct-row counts are conserved by construction.
    #[test]
    fn frequency_map_conserves_counts(rows in prop::collection::vec(0u64..500, 1..400)) {
        let map: FrequencyMap = rows.iter().copied().collect();
        prop_assert_eq!(map.total_accesses(), rows.len() as u64);
        let distinct: std::collections::HashSet<_> = rows.iter().collect();
        prop_assert_eq!(map.distinct_rows(), distinct.len() as u64);
        let summed: u64 = map.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(summed, rows.len() as u64);
    }

    /// The ranked-row ordering is a permutation of the accessed rows with
    /// non-increasing counts.
    #[test]
    fn ranked_rows_are_sorted_by_count(rows in prop::collection::vec(0u64..100, 1..300)) {
        let map: FrequencyMap = rows.iter().copied().collect();
        let ranked = map.ranked_rows();
        prop_assert_eq!(ranked.len() as u64, map.distinct_rows());
        for w in ranked.windows(2) {
            prop_assert!(map.count(w[0]) >= map.count(w[1]));
        }
    }

    /// The CDF is monotone, bounded by [0, 1], and reaches exactly 1 at the
    /// number of ranked rows.
    #[test]
    fn cdf_is_monotone_and_normalised(rows in prop::collection::vec(0u64..200, 1..500)) {
        let map: FrequencyMap = rows.iter().copied().collect();
        let cdf = AccessCdf::from_frequency(&map);
        let mut prev = 0.0;
        for k in 0..=cdf.rows_ranked() {
            let f = cdf.access_fraction(k);
            prop_assert!(f >= prev - 1e-12);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&f));
            prev = f;
        }
        prop_assert!((cdf.access_fraction(cdf.rows_ranked()) - 1.0).abs() < 1e-12);
    }

    /// The ICDF inverts the CDF: the rows it reports for a fraction always
    /// cover at least that fraction, and one fewer row never does.
    #[test]
    fn icdf_inverts_cdf(
        rows in prop::collection::vec(0u64..200, 1..500),
        pct in 0.0f64..1.0,
    ) {
        let map: FrequencyMap = rows.iter().copied().collect();
        let cdf = AccessCdf::from_frequency(&map);
        let needed = cdf.rows_for_access_fraction(pct);
        prop_assert!(cdf.access_fraction(needed) + 1e-12 >= pct);
        if needed > 0 {
            prop_assert!(cdf.access_fraction(needed - 1) < pct + 1e-12);
        }
    }

    /// The 100-step ICDF is monotone in the step index and tops out at the
    /// number of accessed rows.
    #[test]
    fn icdf_steps_monotone(rows in prop::collection::vec(0u64..300, 1..400)) {
        let map: FrequencyMap = rows.iter().copied().collect();
        let cdf = AccessCdf::from_frequency(&map);
        let icdf = cdf.icdf(100);
        let mut prev = 0;
        for i in 0..=100 {
            let r = icdf.rows_at_step(i);
            prop_assert!(r >= prev);
            prev = r;
        }
        prop_assert_eq!(icdf.max_rows(), cdf.rows_ranked());
    }
}
