//! Multi-layer perceptron with ReLU hidden layers.

use crate::tensor::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A fully connected MLP with ReLU activations on hidden layers and a linear
/// final layer (the DLRM applies a sigmoid on top of the final scalar).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    weights: Vec<Matrix>,
    biases: Vec<Vec<f32>>,
}

/// Cached activations of a forward pass, needed for the backward pass.
#[derive(Debug, Clone)]
pub struct MlpActivations {
    /// `inputs[l]` is the input to layer `l`; the last entry is the output.
    pub inputs: Vec<Vec<f32>>,
}

impl Mlp {
    /// Creates an MLP with the given layer sizes, e.g. `[13, 64, 32]` maps a
    /// 13-dimensional input to a 32-dimensional output through one hidden
    /// layer of 64 units.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    pub fn new<R: Rng + ?Sized>(layer_sizes: &[usize], rng: &mut R) -> Self {
        assert!(
            layer_sizes.len() >= 2,
            "an MLP needs an input and an output size"
        );
        let mut weights = Vec::new();
        let mut biases = Vec::new();
        for w in layer_sizes.windows(2) {
            weights.push(Matrix::xavier(w[1], w[0], rng));
            biases.push(vec![0.0; w[1]]);
        }
        Self { weights, biases }
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.weights.last().expect("non-empty").rows()
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.weights.first().expect("non-empty").cols()
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.weights.len()
    }

    /// Forward pass returning the output and the cached activations.
    pub fn forward(&self, input: &[f32]) -> (Vec<f32>, MlpActivations) {
        assert_eq!(input.len(), self.input_dim(), "input dimension mismatch");
        let mut inputs = vec![input.to_vec()];
        let mut x = input.to_vec();
        let last = self.weights.len() - 1;
        for (l, (w, b)) in self.weights.iter().zip(&self.biases).enumerate() {
            let mut y = w.matvec(&x);
            for (yi, bi) in y.iter_mut().zip(b) {
                *yi += bi;
            }
            if l != last {
                for v in &mut y {
                    *v = v.max(0.0);
                }
            }
            inputs.push(y.clone());
            x = y;
        }
        (x, MlpActivations { inputs })
    }

    /// Backward pass: given the gradient of the loss w.r.t. the output,
    /// updates the weights with SGD and returns the gradient w.r.t. the input.
    pub fn backward(
        &mut self,
        activations: &MlpActivations,
        output_grad: &[f32],
        learning_rate: f32,
    ) -> Vec<f32> {
        let mut grad = output_grad.to_vec();
        let last = self.weights.len() - 1;
        for l in (0..self.weights.len()).rev() {
            // ReLU derivative on hidden layers (the stored input of layer l+1
            // is post-activation, which is what the forward pass produced).
            if l != last {
                for (g, &a) in grad.iter_mut().zip(&activations.inputs[l + 1]) {
                    if a <= 0.0 {
                        *g = 0.0;
                    }
                }
            }
            let input = &activations.inputs[l];
            let input_grad = self.weights[l].matvec_transposed(&grad);
            self.weights[l].sgd_outer_update(&grad, input, learning_rate);
            for (b, &g) in self.biases[l].iter_mut().zip(&grad) {
                *b -= learning_rate * g;
            }
            grad = input_grad;
        }
        grad
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(5)
    }

    #[test]
    fn forward_shapes() {
        let mlp = Mlp::new(&[4, 8, 3], &mut rng());
        assert_eq!(mlp.input_dim(), 4);
        assert_eq!(mlp.output_dim(), 3);
        assert_eq!(mlp.num_layers(), 2);
        let (out, acts) = mlp.forward(&[0.1, -0.2, 0.3, 0.4]);
        assert_eq!(out.len(), 3);
        assert_eq!(acts.inputs.len(), 3);
    }

    #[test]
    fn relu_is_applied_to_hidden_layers() {
        let mlp = Mlp::new(&[2, 16, 1], &mut rng());
        let (_, acts) = mlp.forward(&[1.0, -1.0]);
        assert!(
            acts.inputs[1].iter().all(|&v| v >= 0.0),
            "hidden activations must be non-negative"
        );
    }

    #[test]
    fn training_reduces_loss_on_simple_regression() {
        // Learn y = x0 + x1 with a tiny MLP and squared loss.
        let mut mlp = Mlp::new(&[2, 8, 1], &mut rng());
        let mut r = rng();
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for step in 0..600 {
            let x = [r.gen_range(-1.0f32..1.0), r.gen_range(-1.0f32..1.0)];
            let target = x[0] + x[1];
            let (out, acts) = mlp.forward(&x);
            let err = out[0] - target;
            last_loss = err * err;
            if step == 0 {
                first_loss = Some(last_loss);
            }
            mlp.backward(&acts, &[2.0 * err], 0.05);
        }
        assert!(
            last_loss < first_loss.unwrap().max(0.05),
            "loss should decrease: {last_loss}"
        );
    }

    #[test]
    #[should_panic(expected = "input dimension mismatch")]
    fn wrong_input_size_panics() {
        let mlp = Mlp::new(&[3, 2], &mut rng());
        let _ = mlp.forward(&[1.0]);
    }
}
